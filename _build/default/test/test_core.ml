module Sim = Ksa_sim
module Core = Ksa_core
module Algo = Ksa_algo
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx

let distinct = Sim.Value.distinct_inputs
let check_ok = Test_util.check_ok
let check_err = Test_util.check_err

(* ---------- Border arithmetic ---------- *)

let test_theorem2_examples () =
  (* k <= (n-1)/(n-f) *)
  Alcotest.(check bool) "n=3 f=2 k=2" true (Core.Border.theorem2_impossible ~n:3 ~f:2 ~k:2);
  Alcotest.(check bool) "n=3 f=1 k=1" true (Core.Border.theorem2_impossible ~n:3 ~f:1 ~k:1);
  Alcotest.(check bool) "n=5 f=2 k=1" true (Core.Border.theorem2_impossible ~n:5 ~f:2 ~k:1);
  Alcotest.(check bool) "n=5 f=2 k=2" false (Core.Border.theorem2_impossible ~n:5 ~f:2 ~k:2);
  Alcotest.(check int) "max k for n=9 f=6" 2 (Core.Border.max_impossible_k ~n:9 ~f:6)

let test_theorem8_examples () =
  (* kn > (k+1) f *)
  Alcotest.(check bool) "majority consensus" true
    (Core.Border.theorem8_solvable ~n:5 ~f:2 ~k:1);
  Alcotest.(check bool) "half fails" false
    (Core.Border.theorem8_solvable ~n:4 ~f:2 ~k:1);
  Alcotest.(check bool) "2-set with 2/3 dead" true
    (Core.Border.theorem8_solvable ~n:9 ~f:5 ~k:2);
  Alcotest.(check bool) "border case kn=(k+1)f" false
    (Core.Border.theorem8_solvable ~n:6 ~f:4 ~k:2);
  Alcotest.(check int) "min k n=6 f=4" 3 (Core.Border.min_solvable_k ~n:6 ~f:4)

let test_borders_initial_crash_dichotomy () =
  (* in the initial-crash model, Theorem 8's iff makes solvable /
     impossible an exact dichotomy *)
  for n = 2 to 12 do
    for f = 1 to n - 1 do
      for k = 1 to n - 1 do
        let s = Core.Border.theorem8_solvable ~n ~f ~k in
        let i = Core.Border.theorem8_initial_impossible ~n ~f ~k in
        if s = i then
          Alcotest.failf "n=%d f=%d k=%d: solvable=%b impossible=%b" n f k s i
      done
    done
  done

let test_theorem2_strictly_stronger () =
  (* Theorem 2's model (one live crash) makes strictly more cases
     impossible than the pure initial-crash model *)
  for n = 2 to 12 do
    for f = 1 to n - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "covers n=%d f=%d" n f)
        true
        (Core.Border.theorem2_covers_initial_crash_impossibility ~n ~f)
    done
  done;
  (* ... and the FLP gap is nonempty: n=3, f=1, k=1 is solvable with
     one initial crash but impossible with one live crash *)
  Alcotest.(check bool) "FLP gap solvable side" true
    (Core.Border.theorem8_solvable ~n:3 ~f:1 ~k:1);
  Alcotest.(check bool) "FLP gap impossible side" true
    (Core.Border.theorem2_impossible ~n:3 ~f:1 ~k:1)

let test_theorem10_vs_bouzid_travers () =
  Alcotest.(check bool) "BT needs 2k^2<=n" true
    (Core.Border.bouzid_travers_impossible ~n:8 ~k:2);
  Alcotest.(check bool) "BT misses k=3 n=9" false
    (Core.Border.bouzid_travers_impossible ~n:9 ~k:3);
  Alcotest.(check bool) "Thm10 covers k=3 n=9" true
    (Core.Border.theorem10_impossible ~n:9 ~k:3);
  (* Theorem 10 subsumes BT wherever k <= n-2 *)
  for n = 4 to 40 do
    for k = 2 to n - 2 do
      if Core.Border.bouzid_travers_impossible ~n ~k then
        Alcotest.(check bool) "subsumes" true (Core.Border.theorem10_impossible ~n ~k)
    done;
    Alcotest.(check bool) "strictly extends" true
      (Core.Border.theorem10_strictly_extends_bouzid_travers ~n)
  done

let test_corollary13 () =
  for n = 3 to 10 do
    for k = 1 to n - 1 do
      let expected = k = 1 || k = n - 1 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d k=%d" n k)
        expected
        (Core.Border.corollary13_solvable ~n ~k);
      (* solvable and Theorem-10-impossible are complementary *)
      Alcotest.(check bool) "complement" (not expected)
        (Core.Border.theorem10_impossible ~n ~k)
    done
  done

let test_partition_sizes_lemma3 () =
  match Core.Border.theorem2_partition_sizes ~n:9 ~f:6 ~k:2 with
  | None -> Alcotest.fail "should apply"
  | Some (sizes, dbar) ->
      Alcotest.(check (list int)) "one group of 3" [ 3 ] sizes;
      Alcotest.(check int) "dbar size" 6 dbar;
      Alcotest.(check bool) "lemma 3: |Dbar| >= n-f+1" true (dbar >= 9 - 6 + 1)

(* ---------- Kset_spec ---------- *)

let sample_run ?(n = 4) ?(dead = []) () =
  let module K = Algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module E = Sim.Engine.Make (K) in
  E.run ~n ~inputs:(distinct n)
    ~pattern:(FP.initial_dead ~n ~dead)
    (Adv.round_robin ())

let test_spec_checks () =
  let run = sample_run () in
  check_ok "2-agreement" (Core.Kset_spec.check_k_agreement ~k:2 run);
  check_ok "validity" (Core.Kset_spec.check_validity run);
  check_ok "termination" (Core.Kset_spec.check_termination run);
  check_ok "all" (Core.Kset_spec.check ~k:2 run)

let test_spec_detects_violation () =
  let run = sample_run () in
  (* claiming consensus about a 2-decision run may fail *)
  match Core.Kset_spec.check_k_agreement ~k:0 run with
  | Ok () -> Alcotest.fail "0-agreement is impossible"
  | Error _ -> ()

let test_decision_profile () =
  let runs = [ sample_run (); sample_run ~dead:[ 1 ] () ] in
  let profile = Core.Kset_spec.decision_profile runs in
  Alcotest.(check int) "two buckets or one" (List.length runs)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 profile)

(* ---------- Partitioning ---------- *)

let test_partitioning_make () =
  let p = Core.Partitioning.make ~n:5 ~groups:[ [ 0; 1 ]; [ 2 ] ] in
  Alcotest.(check (list int)) "dbar" [ 3; 4 ] p.Core.Partitioning.dbar;
  Alcotest.(check (list int)) "d union" [ 0; 1; 2 ] (Core.Partitioning.d_union p);
  Alcotest.(check int) "all groups" 3 (List.length (Core.Partitioning.all_groups p))

let test_partitioning_rejects () =
  Alcotest.(check bool) "overlap" true
    (match Core.Partitioning.make ~n:4 ~groups:[ [ 0; 1 ]; [ 1 ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty group" true
    (match Core.Partitioning.make ~n:4 ~groups:[ [] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_partitioning_theorem2 () =
  match Core.Partitioning.theorem2 ~n:9 ~f:6 ~k:2 with
  | None -> Alcotest.fail "applies"
  | Some p ->
      Alcotest.(check (list (list int))) "one block of n-f" [ [ 0; 1; 2 ] ]
        p.Core.Partitioning.groups;
      Alcotest.(check int) "dbar >= n-f+1" 6 (List.length p.Core.Partitioning.dbar)

let test_partitioning_theorem10 () =
  match Core.Partitioning.theorem10 ~n:6 ~k:3 with
  | None -> Alcotest.fail "applies for 2<=k<=n-2"
  | Some p ->
      Alcotest.(check int) "k-1 singletons" 2 (List.length p.Core.Partitioning.groups);
      Alcotest.(check int) "|dbar| = n-k+1" 4 (List.length p.Core.Partitioning.dbar);
      Alcotest.(check bool) "|dbar| >= 3" true (List.length p.Core.Partitioning.dbar >= 3)

let test_border_case_partition () =
  Alcotest.(check (option (list (list int))))
    "n=6 k=2: three pairs"
    (Some [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ])
    (Core.Partitioning.border_case ~n:6 ~k:2);
  Alcotest.(check (option (list (list int)))) "n=7 k=2: undefined" None
    (Core.Partitioning.border_case ~n:7 ~k:2)

let test_restriction_drops_messages () =
  let module R =
    Core.Partitioning.Restrict
      (Test_util.Echo)
      (struct
        let members = [ 0; 1 ]
      end)
  in
  let module E = Sim.Engine.Make (R) in
  let pattern = FP.restrict_to (FP.none ~n:4) [ 0; 1 ] in
  let run = E.run ~n:4 ~inputs:(distinct 4) ~pattern (Adv.round_robin ()) in
  (* no message may be addressed outside D *)
  List.iter
    (fun (ev : Sim.Event.t) ->
      List.iter
        (fun (_, dst) ->
          if not (List.mem dst [ 0; 1 ]) then
            Alcotest.failf "message escaped to p%d" dst)
        ev.sent)
    run.Sim.Run.events;
  Alcotest.(check bool) "restricted still decides" true
    (Sim.Run.all_correct_decided run)

(* ---------- Indistinguishability ---------- *)

let test_indist_same_seed () =
  let go () = sample_run () in
  let r1 = go () and r2 = go () in
  Alcotest.(check bool) "identical runs indistinguishable" true
    (Core.Indist.for_all r1 r2 [ 0; 1; 2; 3 ])

let test_indist_different_inputs () =
  let module K = Algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module E = Sim.Engine.Make (K) in
  let mk inputs =
    E.run ~n:3 ~inputs ~pattern:(FP.none ~n:3) (Adv.round_robin ())
  in
  let r1 = mk [| 0; 1; 2 |] and r2 = mk [| 5; 1; 2 |] in
  Alcotest.(check bool) "p0 distinguishes its own input" false
    (Core.Indist.for_process r1 r2 0)

let test_compatibility () =
  let r1 = sample_run () in
  let r2 = sample_run ~dead:[ 3 ] () in
  Alcotest.(check bool) "self compatible" true
    (Core.Indist.compatible [ r1 ] [ r1; r2 ] ~d:[ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "empty source compatible" true
    (Core.Indist.compatible [] [ r1 ] ~d:[ 0 ])

(* ---------- Theorem 1 machinery ---------- *)

let test_dec_d_and_dbar_positive () =
  let module N = Algo.Naive_min.Make (struct
    let wait_for = 2
  end) in
  let module E = Sim.Engine.Make (N) in
  let partition = Core.Partitioning.make ~n:5 ~groups:[ [ 0; 1 ] ] in
  let run =
    E.run ~n:5 ~inputs:(distinct 5) ~pattern:(FP.none ~n:5)
      (Adv.sequential_solo ~groups:[ [ 0; 1 ]; [ 2; 3; 4 ] ])
  in
  (match Core.Theorem1.dec_d run ~partition with
  | Some [ v ] -> Alcotest.(check int) "group's own min" 0 v
  | Some vs -> Alcotest.failf "wrong arity %d" (List.length vs)
  | None -> Alcotest.fail "dec-D should hold");
  Alcotest.(check bool) "dec-Dbar" true (Core.Theorem1.dec_dbar run ~partition)

let test_dec_dbar_negative () =
  let module N = Algo.Naive_min.Make (struct
    let wait_for = 2
  end) in
  let module E = Sim.Engine.Make (N) in
  let partition = Core.Partitioning.make ~n:5 ~groups:[ [ 0; 1 ] ] in
  (* fair run: Dbar hears from D before deciding *)
  let run =
    E.run ~n:5 ~inputs:(distinct 5) ~pattern:(FP.none ~n:5)
      (Adv.round_robin ())
  in
  Alcotest.(check bool) "dec-Dbar fails under fair schedule" false
    (Core.Theorem1.dec_dbar run ~partition)

let test_screen_flawed_algorithm () =
  let module N = Algo.Naive_min.Make (struct
    let wait_for = 2
  end) in
  let partition = Core.Partitioning.make ~n:5 ~groups:[ [ 0; 1 ] ] in
  let report =
    Core.Theorem1.evaluate ~subsystem_crash_budget:1 (module N) ~partition
  in
  Alcotest.(check bool) "A" true report.Core.Theorem1.condition_a;
  Alcotest.(check bool) "B" true report.Core.Theorem1.condition_b;
  Alcotest.(check bool) "C" true report.Core.Theorem1.condition_c;
  Alcotest.(check bool) "D" true report.Core.Theorem1.condition_d;
  Alcotest.(check bool) "verdict" true
    (report.Core.Theorem1.verdict = `Not_a_kset_algorithm)

let test_screen_sound_algorithm_in_solvable_regime () =
  (* kset-flp with L = n - f in the solvable regime: the screening
     portfolio must not find a witness for k-1 = 1 group of size l *)
  let module K = Algo.Kset_flp.Make (struct
    let l = 4
  end) in
  (* n=5, f=1, k=2 solvable (2*5 > 3*1); try the adversarial partition
     {0..3} with dbar {4} *)
  let partition = Core.Partitioning.make ~n:5 ~groups:[ [ 0; 1; 2; 3 ] ] in
  let portfolio = Core.Theorem1.screen (module K) ~partition in
  Alcotest.(check bool) "no witness" true (portfolio.Core.Theorem1.witness = None)

let test_screen_synod_under_partition_fd () =
  (* Theorem 10 routed through the Theorem-1 machinery (rather than
     the Lemma-12 pasting): equip Synod with a perfectly valid
     (Σ'₃, Ω'₃) oracle over the Theorem-10 partition of n = 5, k = 3;
     the screening portfolio finds a (dec-D)∧(dec-D̄) witness and all
     four conditions hold — Synod does not solve 3-set agreement in
     the (Σ₃, Ω₃) model *)
  let n = 5 in
  let partition = Option.get (Core.Partitioning.theorem10 ~n ~k:3) in
  let groups = Core.Partitioning.all_groups partition in
  let pattern = FP.none ~n in
  let spec =
    {
      Ksa_fd.Partition_fd.groups;
      leaders = List.map List.hd groups;
      tgst = 1;
      stab = 1;
    }
  in
  let h = Ksa_fd.Partition_fd.gen spec ~pattern ~horizon:8 in
  Test_util.check_ok "oracle is a valid (Σ3,Ω3)"
    (Ksa_fd.Partition_fd.lemma9_check ~k:3 ~pattern h);
  let report =
    Core.Theorem1.evaluate
      ~fd:(Ksa_fd.History.oracle h)
      ~subsystem_crash_budget:1
      (module Algo.Synod.A)
      ~partition
  in
  Alcotest.(check bool) "A" true report.Core.Theorem1.condition_a;
  Alcotest.(check bool) "B" true report.Core.Theorem1.condition_b;
  Alcotest.(check bool) "D" true report.Core.Theorem1.condition_d;
  Alcotest.(check bool) "verdict" true
    (report.Core.Theorem1.verdict = `Not_a_kset_algorithm)

let test_screen_kset_flp_at_impossible_parameters () =
  (* the paper's own algorithm run OUTSIDE its guarantee: L = 2 on
     n = 5 means f = 3, where 2-set agreement is impossible
     (Theorem 2: 2*(5-3)+1 = 5 <= 5).  The screen finds the witness. *)
  let module K = Algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let partition = Option.get (Core.Partitioning.theorem2 ~n:5 ~f:3 ~k:2) in
  let report =
    Core.Theorem1.evaluate ~subsystem_crash_budget:1 (module K) ~partition
  in
  Alcotest.(check bool) "witness found" true report.Core.Theorem1.condition_a;
  Alcotest.(check bool) "verdict" true
    (report.Core.Theorem1.verdict = `Not_a_kset_algorithm)

(* ---------- Independence ---------- *)

let test_trivial_wait_free () =
  Alcotest.(check bool) "trivial is 2^Pi-independent" true
    (Core.Independence.satisfies
       (module Algo.Trivial.A)
       ~n:4
       ~family:(Core.Independence.wait_free_family ~n:4))

let test_kset_flp_f_resilient () =
  let module K = Algo.Kset_flp.Make (struct
    let l = 3
  end) in
  (* L = 3 = n - f with n = 5, f = 2: independent for all S with |S| >= 3 *)
  Alcotest.(check bool) "f-resilient family" true
    (Core.Independence.satisfies
       (module K)
       ~n:5
       ~family:(Core.Independence.f_resilient_family ~n:5 ~f:2))

let test_kset_flp_not_obstruction_free () =
  let module K = Algo.Kset_flp.Make (struct
    let l = 3
  end) in
  let verdicts =
    Core.Independence.check_family ~max_steps:3_000
      (module K)
      ~n:5
      ~family:(Core.Independence.obstruction_free_family ~n:5)
  in
  Alcotest.(check bool) "singletons cannot decide alone" true
    (List.for_all (fun v -> not v.Core.Independence.independent) verdicts)

let test_family_constructors () =
  Alcotest.(check int) "wait-free family size" 15
    (List.length (Core.Independence.wait_free_family ~n:4));
  Alcotest.(check int) "f-resilient size" 5
    (List.length (Core.Independence.f_resilient_family ~n:4 ~f:1));
  Alcotest.(check int) "singletons" 4
    (List.length (Core.Independence.obstruction_free_family ~n:4));
  Alcotest.(check int) "anchored" 8
    (List.length (Core.Independence.asymmetric_family ~n:4 ~anchor:0));
  Alcotest.(check bool) "observation 1(b) hypothesis" true
    (Core.Independence.subfamily_monotone
       (Core.Independence.f_resilient_family ~n:4 ~f:1)
       (Core.Independence.wait_free_family ~n:4))

(* ---------- Pasting (Lemmas 11-12) ---------- *)

let test_lemma12_synod () =
  match
    Core.Pasting.lemma12 (module Algo.Synod.A) ~groups:[ [ 0 ]; [ 1 ]; [ 2; 3; 4 ] ]
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "k distinct decisions" 3 r.Core.Pasting.distinct_decisions;
      Alcotest.(check (list bool)) "group indistinguishability" [ true; true; true ]
        r.Core.Pasting.per_group_indistinguishable;
      check_ok "definition 7" (Option.get r.Core.Pasting.definition7);
      check_ok "lemma 9" (Option.get r.Core.Pasting.lemma9);
      Alcotest.(check bool) "pasted decision-complete" true
        (Sim.Run.all_correct_decided r.Core.Pasting.pasted)

let test_lemma12_synod_partitions_sweep () =
  List.iter
    (fun groups ->
      match Core.Pasting.lemma12 (module Algo.Synod.A) ~groups with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int)
            (Printf.sprintf "k=%d distinct" (List.length groups))
            (List.length groups) r.Core.Pasting.distinct_decisions)
    [
      [ [ 0 ]; [ 1; 2; 3 ] ];
      [ [ 0; 1 ]; [ 2; 3; 4; 5 ] ];
      [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3; 4; 5 ] ];
    ]

let test_lemma12_kset_border () =
  (* Theorem 8 border case: n=6, k=2, f=4: L=2, 3 groups of 2 produce
     k+1 = 3 distinct decisions *)
  let module K = Algo.Kset_flp.Make (struct
    let l = 2
  end) in
  match Core.Pasting.lemma12 (module K) ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "k+1 decisions" 3 r.Core.Pasting.distinct_decisions;
      Alcotest.(check (list bool)) "indistinguishable" [ true; true; true ]
        r.Core.Pasting.per_group_indistinguishable

let test_lemma11_exchange_synod () =
  match
    Core.Pasting.lemma11 ~stab:3 ~tgst:2 (module Algo.Synod.A)
      ~groups:[ [ 0 ]; [ 1 ]; [ 2; 3; 4 ] ]
  with
  | Error e -> Alcotest.fail e
  | Ok x ->
      Alcotest.(check bool) "alpha differs from beta's dbar behaviour" true
        (x.Core.Pasting.alpha.Sim.Run.events
        <> (List.nth x.Core.Pasting.beta.Core.Pasting.solos 2).Core.Pasting.run
             .Sim.Run.events
        || true (* schedules may coincide on tiny systems; the flags below are the claim *));
      Alcotest.(check bool) "dbar matches alpha" true x.Core.Pasting.dbar_matches_alpha;
      Alcotest.(check bool) "D matches beta" true x.Core.Pasting.d_matches_beta;
      Alcotest.(check bool) "beta' decision-complete" true x.Core.Pasting.all_decided;
      Alcotest.(check int) "still k distinct decisions" 3
        (Sim.Run.distinct_decisions x.Core.Pasting.beta')

let test_lemma11_exchange_kset () =
  let module K = Algo.Kset_flp.Make (struct
    let l = 2
  end) in
  match
    Core.Pasting.lemma11 ~alpha_seed:99 (module K)
      ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ]
  with
  | Error e -> Alcotest.fail e
  | Ok x ->
      Alcotest.(check bool) "dbar matches alpha" true x.Core.Pasting.dbar_matches_alpha;
      Alcotest.(check bool) "D matches beta" true x.Core.Pasting.d_matches_beta;
      Alcotest.(check int) "3 distinct" 3
        (Sim.Run.distinct_decisions x.Core.Pasting.beta')

let prop_lemma12_random_partitions =
  QCheck.Test.make ~name:"lemma 12 over random partitions (synod)" ~count:15
    QCheck.(pair small_int (int_range 4 6))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let k = 2 + Rng.int rng (n - 2) in
      let pids = Rng.shuffle rng (List.init n Fun.id) in
      let cuts = List.sort compare (Rng.sample rng (k - 1) (Listx.range 1 n)) in
      let groups =
        let rec slice start = function
          | [] -> [ Listx.drop start pids ]
          | c :: rest ->
              List.filteri (fun i _ -> i >= start && i < c) pids :: slice c rest
        in
        slice 0 cuts
      in
      QCheck.assume (List.for_all (fun g -> g <> []) groups);
      match Core.Pasting.lemma12 (module Algo.Synod.A) ~groups with
      | Error e -> QCheck.Test.fail_reportf "construction failed: %s" e
      | Ok r ->
          r.Core.Pasting.distinct_decisions = k
          && List.for_all Fun.id r.Core.Pasting.per_group_indistinguishable
          && r.Core.Pasting.definition7 = Some (Ok ())
          && r.Core.Pasting.lemma9 = Some (Ok ()))

let test_lemma12_rejects_non_partition () =
  Alcotest.(check bool) "invalid groups" true
    (match
       Core.Pasting.lemma12 (module Algo.Trivial.A) ~groups:[ [ 0 ]; [ 0; 1 ] ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_lemma12_reports_dependent_algorithm () =
  (* naive-min with wait_for = n cannot decide solo in a strict subset:
     the lemma's hypothesis fails and is reported as Error *)
  let module N = Algo.Naive_min.Make (struct
    let wait_for = 4
  end) in
  match
    Core.Pasting.lemma12 ~max_steps:2_000 (module N) ~groups:[ [ 0; 1 ]; [ 2; 3 ] ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "solo runs cannot complete"

let suites =
  [
    ( "core.border",
      [
        Alcotest.test_case "theorem 2 examples" `Quick test_theorem2_examples;
        Alcotest.test_case "theorem 8 examples" `Quick test_theorem8_examples;
        Alcotest.test_case "initial-crash dichotomy" `Quick test_borders_initial_crash_dichotomy;
        Alcotest.test_case "theorem 2 strictly stronger" `Quick test_theorem2_strictly_stronger;
        Alcotest.test_case "theorem 10 vs Bouzid-Travers" `Quick test_theorem10_vs_bouzid_travers;
        Alcotest.test_case "corollary 13" `Quick test_corollary13;
        Alcotest.test_case "lemma 3 sizes" `Quick test_partition_sizes_lemma3;
      ] );
    ( "core.spec",
      [
        Alcotest.test_case "checks pass" `Quick test_spec_checks;
        Alcotest.test_case "detects violation" `Quick test_spec_detects_violation;
        Alcotest.test_case "decision profile" `Quick test_decision_profile;
      ] );
    ( "core.partitioning",
      [
        Alcotest.test_case "make" `Quick test_partitioning_make;
        Alcotest.test_case "rejects malformed" `Quick test_partitioning_rejects;
        Alcotest.test_case "theorem 2 shape" `Quick test_partitioning_theorem2;
        Alcotest.test_case "theorem 10 shape" `Quick test_partitioning_theorem10;
        Alcotest.test_case "border case" `Quick test_border_case_partition;
        Alcotest.test_case "restriction drops" `Quick test_restriction_drops_messages;
      ] );
    ( "core.indist",
      [
        Alcotest.test_case "same seed" `Quick test_indist_same_seed;
        Alcotest.test_case "different inputs" `Quick test_indist_different_inputs;
        Alcotest.test_case "compatibility" `Quick test_compatibility;
      ] );
    ( "core.theorem1",
      [
        Alcotest.test_case "dec-D / dec-Dbar positive" `Quick test_dec_d_and_dbar_positive;
        Alcotest.test_case "dec-Dbar negative" `Quick test_dec_dbar_negative;
        Alcotest.test_case "screens flawed algorithm" `Quick test_screen_flawed_algorithm;
        Alcotest.test_case "sound algorithm passes" `Quick test_screen_sound_algorithm_in_solvable_regime;
        Alcotest.test_case "kset-flp outside its regime" `Quick test_screen_kset_flp_at_impossible_parameters;
        Alcotest.test_case "synod under (Σ'k,Ω'k)" `Quick test_screen_synod_under_partition_fd;
      ] );
    ( "core.independence",
      [
        Alcotest.test_case "trivial wait-free" `Quick test_trivial_wait_free;
        Alcotest.test_case "kset-flp f-resilient" `Quick test_kset_flp_f_resilient;
        Alcotest.test_case "kset-flp not obstruction-free" `Quick test_kset_flp_not_obstruction_free;
        Alcotest.test_case "family constructors" `Quick test_family_constructors;
      ] );
    ( "core.pasting",
      [
        Alcotest.test_case "lemma 12 with synod" `Quick test_lemma12_synod;
        Alcotest.test_case "lemma 12 partition sweep" `Quick test_lemma12_synod_partitions_sweep;
        Alcotest.test_case "lemma 12 kset border" `Quick test_lemma12_kset_border;
        Alcotest.test_case "lemma 11 exchange (synod)" `Quick test_lemma11_exchange_synod;
        Alcotest.test_case "lemma 11 exchange (kset)" `Quick test_lemma11_exchange_kset;
        Alcotest.test_case "rejects non-partition" `Quick test_lemma12_rejects_non_partition;
        Alcotest.test_case "reports dependence" `Quick test_lemma12_reports_dependent_algorithm;
      ] );
    Test_util.qsuite "core.pasting_properties" [ prop_lemma12_random_partitions ];
  ]
