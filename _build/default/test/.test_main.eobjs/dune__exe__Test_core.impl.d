test/test_core.ml: Alcotest Fun Ksa_algo Ksa_core Ksa_fd Ksa_prim Ksa_sim List Option Printf QCheck Test_util
