test/test_misc.ml: Alcotest Array Format Ksa_algo Ksa_core Ksa_fd Ksa_prim Ksa_sim List String Test_util
