test/test_algo.ml: Alcotest Fun Ksa_algo Ksa_core Ksa_fd Ksa_prim Ksa_sim List Printf String
