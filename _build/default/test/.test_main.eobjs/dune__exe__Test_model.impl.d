test/test_model.ml: Alcotest Ksa_algo Ksa_core Ksa_prim Ksa_sim List Test_util
