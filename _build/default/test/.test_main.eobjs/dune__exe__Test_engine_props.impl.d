test/test_engine_props.ml: Fun Hashtbl Ksa_algo Ksa_prim Ksa_sim List Option QCheck String Test_util
