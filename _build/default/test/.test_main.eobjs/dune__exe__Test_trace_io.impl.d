test/test_trace_io.ml: Alcotest Filename Fun Ksa_algo Ksa_core Ksa_prim Ksa_sim List Sys
