test/test_sm.ml: Alcotest Array Fun Ksa_prim Ksa_sim Ksa_sm List QCheck String Test_util
