test/test_util.ml: Alcotest Format Fun Ksa_prim Ksa_sim List QCheck_alcotest
