test/test_dgraph.ml: Alcotest Array Fun Int Ksa_dgraph Ksa_prim List Option QCheck Test_util
