test/test_fd.ml: Alcotest Fun Ksa_fd Ksa_prim Ksa_sim List Printf QCheck Test_util
