test/test_main.ml: Alcotest Test_algo Test_core Test_dgraph Test_engine_props Test_fd Test_ho Test_impl Test_misc Test_model Test_prim Test_sim Test_sm Test_smoke Test_trace_io
