test/test_sim.ml: Alcotest Format Ksa_algo Ksa_prim Ksa_sim List Option Printf Test_util
