test/test_ho.ml: Alcotest Array Int Ksa_ho Ksa_prim Ksa_sim List Printf QCheck Test_util
