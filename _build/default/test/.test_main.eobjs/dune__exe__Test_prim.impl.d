test/test_prim.ml: Alcotest Fun Ksa_prim List QCheck Test_util
