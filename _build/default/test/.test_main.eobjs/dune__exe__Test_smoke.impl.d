test/test_smoke.ml: Alcotest Ksa_algo Ksa_prim Ksa_sim
