test/test_impl.ml: Alcotest Ksa_algo Ksa_core Ksa_fd Ksa_prim Ksa_sim List
