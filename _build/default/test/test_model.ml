module Sim = Ksa_sim
module Model = Sim.Model
module MC = Sim.Model_check
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module Rng = Ksa_prim.Rng

let distinct = Sim.Value.distinct_inputs

module K3 = Ksa_algo.Kset_flp.Make (struct
  let l = 3
end)

module EK3 = Sim.Engine.Make (K3)
module EE = Test_util.Echo_engine

let round_robin_run ?(n = 4) () =
  EK3.run ~n ~inputs:(distinct n) ~pattern:(FP.none ~n) (Adv.round_robin ())

(* ---------- process synchrony ---------- *)

let test_round_robin_is_synchronous () =
  let run = round_robin_run () in
  Alcotest.(check (list string)) "phi = n admissible" []
    (MC.violations (Model.theorem2 ~n:4) run)

let test_starving_schedule_violates_synchrony () =
  (* sequential solo starves the second group during stage one *)
  let n = 4 in
  let run =
    EK3.run ~n ~inputs:(distinct n) ~pattern:(FP.none ~n)
      (Adv.sequential_solo ~groups:[ [ 0; 1; 2 ]; [ 3 ] ])
  in
  ignore run;
  (* the solo run above may decide too fast to starve anyone; use a
     bigger first group workload with echo instead *)
  let run =
    EE.run ~n:5 ~inputs:(distinct 5)
      ~pattern:(FP.none ~n:5)
      (Adv.sequential_solo ~groups:[ [ 0; 1; 2 ]; [ 3; 4 ] ])
  in
  Alcotest.(check bool) "phi = 3 violated" true
    (MC.violations
       { (Model.theorem2 ~n:5) with Model.processes = Model.Sync_processes 3 }
       run
    <> [])

let test_crashed_processes_exempt () =
  let n = 4 in
  let pattern = FP.initial_dead ~n ~dead:[ 2 ] in
  let run = EK3.run ~n ~inputs:(distinct n) ~pattern (Adv.round_robin ()) in
  Alcotest.(check (list string)) "dead process not required to step" []
    (MC.violations (Model.theorem2 ~n) run)

(* ---------- communication synchrony ---------- *)

let test_round_robin_delta_bounded () =
  (* round-robin delivers everything within one lap: delta = 2n is safe *)
  let run = round_robin_run () in
  let m =
    { (Model.theorem2 ~n:4) with Model.communication = Model.Sync_comm 8 }
  in
  Alcotest.(check (list string)) "delta-bounded" [] (MC.violations m run)

let test_partition_violates_delta () =
  let n = 4 in
  let run =
    EK3.run ~n ~inputs:(distinct n) ~pattern:(FP.none ~n)
      (Adv.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ())
  in
  ignore run;
  (* kset-flp with L=3 cannot decide inside groups of 2, so the
     partition adversary releases late or never; use L=2 where groups
     decide solo and cross messages stay pending past any small delta *)
  let module K2 = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module E2 = Sim.Engine.Make (K2) in
  let run =
    E2.run ~n ~inputs:(distinct n) ~pattern:(FP.none ~n)
      (Adv.partition ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ())
  in
  let m =
    { (Model.theorem2 ~n) with Model.communication = Model.Sync_comm 2 }
  in
  Alcotest.(check bool) "delta=2 violated by withheld messages" true
    (MC.violations m run <> [])

(* ---------- order / transmission / atomicity ---------- *)

let test_round_robin_fifo () =
  let run = round_robin_run () in
  let m = { (Model.theorem2 ~n:4) with Model.order = Model.Fifo } in
  Alcotest.(check (list string)) "deliver-all is fifo" [] (MC.violations m run)

let test_lossy_breaks_fifo_sometimes () =
  (* with random deferral, some channel is eventually served out of order *)
  let found = ref false in
  for seed = 1 to 40 do
    if not !found then begin
      let rng = Rng.create ~seed in
      let run =
        EE.run ~n:3 ~inputs:(distinct 3)
          ~pattern:(FP.none ~n:3)
          (Adv.fair_lossy ~rng ~p_defer:0.7)
      in
      let m = { Model.masync with Model.order = Model.Fifo } in
      if MC.violations m run <> [] then found := true
    end
  done;
  Alcotest.(check bool) "fifo violation observable" true !found

let test_broadcast_shape () =
  let run = round_robin_run () in
  Alcotest.(check (list string)) "kset-flp broadcasts" []
    (MC.violations { Model.masync with Model.transmission = Model.Broadcast } run);
  Alcotest.(check bool) "kset-flp is not unicast" true
    (MC.violations { Model.masync with Model.transmission = Model.Unicast } run
    <> [])

let test_atomicity_check () =
  let run = round_robin_run () in
  (* kset-flp receives and replies in one step: violates Separate *)
  Alcotest.(check bool) "separate violated" true
    (MC.violations { Model.masync with Model.atomicity = Model.Separate } run
    <> [])

let test_trivial_is_everything () =
  (* the trivial algorithm never sends: admissible in all 32 models *)
  let module T = Sim.Engine.Make (Ksa_algo.Trivial.A) in
  let run =
    T.run ~n:3 ~inputs:(distinct 3) ~pattern:(FP.none ~n:3) (Adv.round_robin ())
  in
  Alcotest.(check int) "all 32 combinations" 32
    (List.length (MC.admissible_models run ~phi:3 ~delta:3))

(* ---------- the encoded DDS facts ---------- *)

let test_consensus_impossibility_facts () =
  Alcotest.(check (option bool)) "masync" (Some true)
    (Model.consensus_impossible Model.masync ~f:1);
  Alcotest.(check (option bool)) "theorem2 model" (Some true)
    (Model.consensus_impossible (Model.theorem2 ~n:5) ~f:1);
  Alcotest.(check (option bool)) "fully synchronous" (Some false)
    (Model.consensus_impossible (Model.strongest ~n:5 ~delta:2) ~f:1);
  Alcotest.(check (option bool)) "no crashes" (Some false)
    (Model.consensus_impossible Model.masync ~f:0);
  Alcotest.(check (option bool)) "unknown cell" None
    (Model.consensus_impossible
       { Model.masync with Model.communication = Model.Sync_comm 2 }
       ~f:1)

(* ---------- Theorem 2 end-to-end ---------- *)

let test_theorem2_demonstrate () =
  List.iter
    (fun (n, f, k) ->
      match Ksa_core.Theorem2.demonstrate ~n ~f ~k () with
      | Error e -> Alcotest.failf "(%d,%d,%d): %s" n f k e
      | Ok r ->
          Alcotest.(check bool) "lemma3" true r.Ksa_core.Theorem2.lemma3;
          Alcotest.(check bool) "lemma4" true r.Ksa_core.Theorem2.lemma4;
          Alcotest.(check bool) "witness" true (r.Ksa_core.Theorem2.witness <> None);
          Alcotest.(check bool) "sync-model admissible" true
            (r.Ksa_core.Theorem2.witness_admissible = Ok ());
          Alcotest.(check bool) "applies" true r.Ksa_core.Theorem2.theorem_applies)
    [ (5, 3, 2); (7, 5, 3); (4, 3, 3) ]

let test_theorem2_outside_region () =
  match Ksa_core.Theorem2.demonstrate ~n:5 ~f:2 ~k:2 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k(n-f)+1 > n: theorem should not apply"

let suites =
  [
    ( "sim.model",
      [
        Alcotest.test_case "round-robin is synchronous" `Quick
          test_round_robin_is_synchronous;
        Alcotest.test_case "starvation violates synchrony" `Quick
          test_starving_schedule_violates_synchrony;
        Alcotest.test_case "crashed exempt" `Quick test_crashed_processes_exempt;
        Alcotest.test_case "round-robin delta-bounded" `Quick
          test_round_robin_delta_bounded;
        Alcotest.test_case "partition violates delta" `Quick
          test_partition_violates_delta;
        Alcotest.test_case "round-robin fifo" `Quick test_round_robin_fifo;
        Alcotest.test_case "lossy breaks fifo" `Quick test_lossy_breaks_fifo_sometimes;
        Alcotest.test_case "broadcast shape" `Quick test_broadcast_shape;
        Alcotest.test_case "atomicity" `Quick test_atomicity_check;
        Alcotest.test_case "trivial in all 32" `Quick test_trivial_is_everything;
        Alcotest.test_case "DDS facts" `Quick test_consensus_impossibility_facts;
      ] );
    ( "core.theorem2",
      [
        Alcotest.test_case "demonstrate" `Quick test_theorem2_demonstrate;
        Alcotest.test_case "outside region" `Quick test_theorem2_outside_region;
      ] );
  ]
