(* Failure-detector implementations from partial synchrony. *)

module Sim = Ksa_sim
module Fd = Ksa_fd
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module Rng = Ksa_prim.Rng
module HB = Sim.Engine.Make (Fd.Impl.Heartbeat)

let heartbeat_run ~seed ~n ~dead ~gst ~steps =
  let pattern = FP.initial_dead ~n ~dead in
  let rng = Rng.create ~seed in
  HB.run ~max_steps:steps ~n
    ~inputs:(Sim.Value.distinct_inputs n)
    ~pattern
    (Adv.eventually_lockstep ~rng ~gst ~p_defer:0.6)

let test_omega_extraction_valid () =
  for seed = 1 to 10 do
    let n = 5 in
    let pattern = FP.initial_dead ~n ~dead:[ 0 ] in
    let run = heartbeat_run ~seed ~n ~dead:[ 0 ] ~gst:40 ~steps:150 in
    let h = Fd.Impl.omega_of_run run ~window:(3 * n) in
    match Fd.Omega.validate ~k:1 ~pattern h with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_omega_extraction_leader_is_min_alive () =
  let n = 4 in
  let run = heartbeat_run ~seed:3 ~n ~dead:[ 0; 1 ] ~gst:30 ~steps:120 in
  let pattern = FP.initial_dead ~n ~dead:[ 0; 1 ] in
  let h = Fd.Impl.omega_of_run run ~window:12 in
  match Fd.Omega.check_eventual_leadership ~pattern h with
  | Ok (_, ld) -> Alcotest.(check (list int)) "min alive" [ 2 ] ld
  | Error e -> Alcotest.fail e

let test_sigma_extraction_valid () =
  for seed = 1 to 10 do
    let n = 5 in
    let dead = [ 4 ] in
    let pattern = FP.initial_dead ~n ~dead in
    let run = heartbeat_run ~seed ~n ~dead ~gst:40 ~steps:150 in
    let h = Fd.Impl.sigma_of_run run ~window:(3 * n) in
    match Fd.Sigma.validate ~k:1 ~pattern h with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_sigma_intersection_even_pre_gst () =
  (* intersection is unconditional: check on a run that never
     stabilizes (gst beyond the budget) *)
  let n = 5 in
  let pattern = FP.none ~n in
  let run = heartbeat_run ~seed:7 ~n ~dead:[] ~gst:10_000 ~steps:120 in
  let h = Fd.Impl.sigma_of_run run ~window:8 in
  Alcotest.(check bool) "no intersection violation" true
    (Fd.Sigma.find_intersection_violation ~k:1 ~pattern h = None)

let test_extracted_pair_drives_synod () =
  (* end to end: implement (Sigma, Omega) from partial synchrony, then
     use the extracted histories as the oracle for Synod *)
  let n = 4 in
  let pattern = FP.none ~n in
  let hb = heartbeat_run ~seed:11 ~n ~dead:[] ~gst:30 ~steps:140 in
  let sigma = Fd.Impl.sigma_of_run hb ~window:12 in
  let omega = Fd.Impl.omega_of_run hb ~window:12 in
  let oracle = Fd.History.oracle (Fd.History.combine sigma omega) in
  let module ES = Sim.Engine.Make (Ksa_algo.Synod.A) in
  let rng = Rng.create ~seed:5 in
  let run =
    ES.run ~max_steps:50_000 ~fd:oracle ~n
      ~inputs:(Sim.Value.distinct_inputs n)
      ~pattern (Adv.fair ~rng)
  in
  match Ksa_core.Kset_spec.check ~k:1 run with
  | Ok () -> ()
  | Error e -> Alcotest.failf "synod over implemented FDs: %s" e

let test_heartbeat_never_decides () =
  let run = heartbeat_run ~seed:1 ~n:3 ~dead:[] ~gst:5 ~steps:60 in
  Alcotest.(check int) "no decisions" 0 (List.length run.Sim.Run.decisions);
  Alcotest.(check bool) "budget status" true
    (run.Sim.Run.status = Sim.Run.Hit_step_budget)

let suites =
  [
    ( "fd.impl",
      [
        Alcotest.test_case "omega extraction validates" `Quick
          test_omega_extraction_valid;
        Alcotest.test_case "omega leader = min alive" `Quick
          test_omega_extraction_leader_is_min_alive;
        Alcotest.test_case "sigma extraction validates" `Quick
          test_sigma_extraction_valid;
        Alcotest.test_case "sigma intersection unconditional" `Quick
          test_sigma_intersection_even_pre_gst;
        Alcotest.test_case "extracted pair drives synod" `Quick
          test_extracted_pair_drives_synod;
        Alcotest.test_case "heartbeat never decides" `Quick
          test_heartbeat_never_decides;
      ] );
  ]
