(* Edge cases and API surface not covered elsewhere. *)

module Sim = Ksa_sim
module Fd = Ksa_fd
module Core = Ksa_core
module FP = Sim.Failure_pattern
module Rng = Ksa_prim.Rng

let distinct = Sim.Value.distinct_inputs

(* ---------- pid / value ---------- *)

let test_pid_value_basics () =
  Alcotest.(check (list int)) "universe" [ 0; 1; 2 ] (Sim.Pid.universe 3);
  Alcotest.(check bool) "valid" true (Sim.Pid.valid ~n:3 2);
  Alcotest.(check bool) "invalid" false (Sim.Pid.valid ~n:3 3);
  Alcotest.(check bool) "invalid neg" false (Sim.Pid.valid ~n:3 (-1));
  Alcotest.(check string) "pp" "p4" (Format.asprintf "%a" Sim.Pid.pp 4);
  Alcotest.(check int) "distinct count" 2
    (Sim.Value.count_distinct [ 1; 1; 7 ]);
  Alcotest.(check (array int)) "constant inputs" [| 9; 9 |]
    (Sim.Value.constant_inputs 2 9)

(* ---------- borders: argument validation ---------- *)

let test_border_argument_checks () =
  Alcotest.(check bool) "f >= n rejected" true
    (match Core.Border.theorem2_impossible ~n:3 ~f:3 ~k:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "k = 0 rejected" true
    (match Core.Border.theorem8_solvable ~n:3 ~f:1 ~k:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "corollary13 domain" true
    (match Core.Border.corollary13_solvable ~n:4 ~k:4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Kset_spec.check_many ---------- *)

let test_check_many () =
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module E = Sim.Engine.Make (K) in
  let mk seed =
    E.run ~n:4 ~inputs:(distinct 4)
      ~pattern:(FP.none ~n:4)
      (Sim.Adversary.fair ~rng:(Rng.create ~seed))
  in
  let runs = [ mk 1; mk 2; mk 3 ] in
  Test_util.check_ok "all pass" (Core.Kset_spec.check_many ~k:2 runs);
  (match Core.Kset_spec.check_many ~k:0 runs with
  | Ok () -> Alcotest.fail "k=0 cannot pass"
  | Error e ->
      Alcotest.(check bool) "mentions the run index" true
        (String.length e > 4 && String.sub e 0 4 = "run "))

(* ---------- History.tabulate and map ---------- *)

let test_history_tabulate () =
  let h =
    Fd.History.make ~n:2 ~horizon:3 (fun ~time ~me ->
        Sim.Fd_view.Lonely (time + me > 2))
  in
  let table = Fd.History.tabulate h in
  Alcotest.(check int) "rows" 4 (Array.length table);
  Alcotest.(check int) "cols" 2 (Array.length table.(1));
  Alcotest.(check bool) "cell (3,0)" true
    (table.(3).(0) = Sim.Fd_view.Lonely true);
  Alcotest.(check bool) "cell (1,0)" true
    (table.(1).(0) = Sim.Fd_view.Lonely false);
  let mapped =
    Fd.History.map h (function
      | Sim.Fd_view.Lonely b -> Sim.Fd_view.Lonely (not b)
      | v -> v)
  in
  Alcotest.(check bool) "map flips" true
    (mapped.Fd.History.view ~time:3 ~me:0 = Sim.Fd_view.Lonely false)

(* ---------- theorem 10 partition: None outside region ---------- *)

let test_theorem10_partition_domain () =
  Alcotest.(check bool) "k=1 excluded" true
    (Core.Partitioning.theorem10 ~n:5 ~k:1 = None);
  Alcotest.(check bool) "k=n-1 excluded" true
    (Core.Partitioning.theorem10 ~n:5 ~k:4 = None);
  Alcotest.(check bool) "k=2 included" true
    (Core.Partitioning.theorem10 ~n:5 ~k:2 <> None)

(* ---------- Run: last_decision_time with undecided ---------- *)

let test_last_decision_time_none () =
  let module E = Test_util.Echo_engine in
  let pattern = FP.initial_dead ~n:3 ~dead:[ 2 ] in
  let run =
    E.run ~n:3 ~inputs:(distinct 3) ~pattern (Sim.Adversary.round_robin ())
  in
  Alcotest.(check (option int)) "dead process never decides" None
    (Sim.Run.last_decision_time run [ 0; 2 ]);
  Alcotest.(check bool) "decided pair has a time" true
    (Sim.Run.last_decision_time run [ 0; 1 ] <> None)

(* ---------- Engine.finish preserves inputs ---------- *)

let test_finish_preserves_inputs () =
  let module E = Test_util.Echo_engine in
  let inputs = [| 5; 6; 7 |] in
  let c = E.init ~n:3 ~inputs in
  let run = E.finish c ~pattern:(FP.none ~n:3) Sim.Run.Halted_by_adversary in
  Alcotest.(check (array int)) "inputs" inputs run.Sim.Run.inputs;
  Alcotest.(check int) "no events" 0 (List.length run.Sim.Run.events)

(* ---------- Model pp smoke / admissible_models monotonicity ---------- *)

let test_model_pp_and_cube () =
  let s = Format.asprintf "%a" Sim.Model.pp (Sim.Model.theorem2 ~n:4) in
  Alcotest.(check bool) "mentions sync procs" true
    (String.length s > 0);
  (* a run admissible in a stronger model is admissible in weaker ones:
     count of admissible models for a round-robin run must be >= that
     of a solo-starved run *)
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let module E = Sim.Engine.Make (K) in
  let rr =
    E.run ~n:4 ~inputs:(distinct 4) ~pattern:(FP.none ~n:4)
      (Sim.Adversary.round_robin ())
  in
  let solo =
    E.run ~n:4 ~inputs:(distinct 4) ~pattern:(FP.none ~n:4)
      (Sim.Adversary.sequential_solo ~groups:[ [ 0; 1 ]; [ 2; 3 ] ])
  in
  let count run = List.length (Sim.Model_check.admissible_models run ~phi:4 ~delta:8) in
  Alcotest.(check bool) "round-robin at least as admissible" true
    (count rr >= count solo);
  Alcotest.(check bool) "everything admits masync-minus-broadcast" true (count solo >= 1)

(* ---------- Loneliness: liar set interplay ---------- *)

let test_loneliness_from_time () =
  let pattern = FP.none ~n:3 in
  let h = Fd.Loneliness.gen ~liars:[ 1 ] ~from:4 ~witness:0 ~pattern ~horizon:8 () in
  Alcotest.(check (option bool)) "before from" (Some false)
    (Sim.Fd_view.lonely (h.Fd.History.view ~time:3 ~me:1));
  Alcotest.(check (option bool)) "after from" (Some true)
    (Sim.Fd_view.lonely (h.Fd.History.view ~time:4 ~me:1));
  Test_util.check_ok "valid" (Fd.Loneliness.validate ~pattern h)

(* ---------- Experiments verdict printer ---------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_verdict_pp () =
  let v =
    { Core.Experiments.id = "EX"; claim = "c"; holds = true; detail = "d" }
  in
  let s = Format.asprintf "%a" Core.Experiments.pp_verdict v in
  Alcotest.(check bool) "reproduced" true (contains s "REPRODUCED");
  let bad = { v with Core.Experiments.holds = false } in
  let s = Format.asprintf "%a" Core.Experiments.pp_verdict bad in
  Alcotest.(check bool) "mismatch" true (contains s "MISMATCH")

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "pid/value basics" `Quick test_pid_value_basics;
        Alcotest.test_case "border argument checks" `Quick test_border_argument_checks;
        Alcotest.test_case "check_many" `Quick test_check_many;
        Alcotest.test_case "history tabulate/map" `Quick test_history_tabulate;
        Alcotest.test_case "theorem 10 domain" `Quick test_theorem10_partition_domain;
        Alcotest.test_case "last decision time" `Quick test_last_decision_time_none;
        Alcotest.test_case "finish preserves inputs" `Quick test_finish_preserves_inputs;
        Alcotest.test_case "model pp / DDS cube" `Quick test_model_pp_and_cube;
        Alcotest.test_case "loneliness from-time" `Quick test_loneliness_from_time;
        Alcotest.test_case "verdict printer" `Quick test_verdict_pp;
      ] );
  ]
