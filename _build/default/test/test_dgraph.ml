module D = Ksa_dgraph.Digraph
module Scc = Ksa_dgraph.Scc
module Cond = Ksa_dgraph.Condensation
module Source = Ksa_dgraph.Source
module Weak = Ksa_dgraph.Weak_components
module Gen = Ksa_dgraph.Gen
module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx

(* ---------- Digraph basics ---------- *)

let test_create_dedup () =
  let g = D.create ~n:3 ~edges:[ (0, 1); (0, 1); (1, 2) ] in
  Alcotest.(check int) "edges deduped" 2 (D.edge_count g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (D.edges g)

let test_self_loops_dropped () =
  let g = D.create ~n:2 ~edges:[ (0, 0); (0, 1); (1, 1) ] in
  Alcotest.(check int) "only the real edge" 1 (D.edge_count g)

let test_invalid_vertex () =
  Alcotest.check_raises "bad edge" (D.Invalid_vertex 5) (fun () ->
      ignore (D.create ~n:3 ~edges:[ (0, 5) ]))

let test_degrees () =
  let g = D.create ~n:4 ~edges:[ (0, 2); (1, 2); (3, 2); (2, 0) ] in
  Alcotest.(check int) "in 2" 3 (D.in_degree g 2);
  Alcotest.(check int) "out 2" 1 (D.out_degree g 2);
  Alcotest.(check int) "min in" 0 (D.min_in_degree g);
  Alcotest.(check (list int)) "pred 2" [ 0; 1; 3 ] (D.pred g 2);
  Alcotest.(check (list int)) "succ 2" [ 0 ] (D.succ g 2)

let test_has_edge () =
  let g = D.create ~n:3 ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "has" true (D.has_edge g 0 1);
  Alcotest.(check bool) "not reverse" false (D.has_edge g 1 0)

let test_transpose () =
  let g = D.create ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  let t = D.transpose g in
  Alcotest.(check (list (pair int int))) "reversed" [ (1, 0); (2, 1) ] (D.edges t);
  Alcotest.(check bool) "double transpose" true (D.equal g (D.transpose t))

let test_complete () =
  let g = D.complete 4 in
  Alcotest.(check int) "edges" 12 (D.edge_count g);
  Alcotest.(check int) "min in-degree" 3 (D.min_in_degree g)

let test_induced () =
  let g = D.create ~n:5 ~edges:[ (0, 1); (1, 4); (4, 0); (2, 3) ] in
  let sub, back = D.induced g [ 0; 1; 4 ] in
  Alcotest.(check int) "sub vertices" 3 (D.n sub);
  Alcotest.(check int) "sub edges" 3 (D.edge_count sub);
  Alcotest.(check (list int)) "back map" [ 0; 1; 4 ] (Array.to_list back)

let test_of_pred_lists () =
  let g = D.of_pred_lists [| [ 1; 2 ]; [ 2 ]; [] |] in
  Alcotest.(check (list int)) "pred 0" [ 1; 2 ] (D.pred g 0);
  Alcotest.(check (list int)) "pred 1" [ 2 ] (D.pred g 1);
  Alcotest.(check int) "min in" 0 (D.min_in_degree g)

let test_add_edges () =
  let g = D.create ~n:3 ~edges:[ (0, 1) ] in
  let g' = D.add_edges g [ (1, 2) ] in
  Alcotest.(check int) "one more edge" 2 (D.edge_count g');
  Alcotest.(check int) "original unchanged" 1 (D.edge_count g)

(* ---------- SCC ---------- *)

let test_scc_cycle () =
  let g = Gen.cycle 5 in
  let r = Scc.compute g in
  Alcotest.(check int) "one component" 1 r.Scc.count

let test_scc_dag () =
  let g = D.create ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3) ] in
  let r = Scc.compute g in
  Alcotest.(check int) "all singletons" 4 r.Scc.count

let test_scc_two_cycles () =
  let g = D.create ~n:5 ~edges:[ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (1, 2) ] in
  let r = Scc.compute g in
  Alcotest.(check int) "two components" 2 r.Scc.count;
  Alcotest.(check bool) "0~1" true (Scc.same_component r 0 1);
  Alcotest.(check bool) "2~4" true (Scc.same_component r 2 4);
  Alcotest.(check bool) "1!~2" false (Scc.same_component r 1 2)

let test_scc_components_listing () =
  let g = D.create ~n:4 ~edges:[ (0, 1); (1, 0) ] in
  let comps = List.sort compare (Scc.components g) in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1 ]; [ 2 ]; [ 3 ] ] comps

let test_scc_deep_path_no_overflow () =
  (* iterative Tarjan must survive a long path *)
  let n = 50_000 in
  let g = D.create ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1))) in
  let r = Scc.compute g in
  Alcotest.(check int) "n components" n r.Scc.count

(* reference check: mutual reachability on small graphs *)
let reachable g u =
  let n = D.n g in
  let seen = Array.make n false in
  let rec go = function
    | [] -> ()
    | v :: rest ->
        let next = List.filter (fun w -> not seen.(w)) (D.succ g v) in
        List.iter (fun w -> seen.(w) <- true) next;
        go (next @ rest)
  in
  seen.(u) <- true;
  go [ u ];
  seen

let prop_scc_matches_mutual_reachability =
  QCheck.Test.make ~name:"scc = mutual reachability" ~count:60
    QCheck.(pair small_int (int_range 1 7))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Gen.gnp rng ~n ~p:0.3 in
      let r = Scc.compute g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let ru = reachable g u in
        for v = 0 to n - 1 do
          let rv = reachable g v in
          let mutual = ru.(v) && rv.(u) in
          if Scc.same_component r u v <> mutual then ok := false
        done
      done;
      !ok)

(* ---------- Condensation ---------- *)

let test_condensation_acyclic () =
  let g = D.create ~n:6 ~edges:[ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (4, 5) ] in
  let t = Cond.compute g in
  Alcotest.(check bool) "dag acyclic" true (Cond.is_acyclic t.Cond.dag);
  Alcotest.(check int) "component of 0 = of 1" (Cond.component_of t 0)
    (Cond.component_of t 1)

let test_condensation_topological () =
  let g = D.create ~n:4 ~edges:[ (0, 1); (1, 2); (0, 3) ] in
  let t = Cond.compute g in
  let order = Cond.topological_order t in
  let pos c = Option.get (List.find_index (Int.equal c) order) in
  List.iter
    (fun (u, v) ->
      let cu = Cond.component_of t u and cv = Cond.component_of t v in
      if cu <> cv && pos cu >= pos cv then
        Alcotest.failf "edge %d->%d violates topological order" u v)
    (D.edges g)

let test_sources_sinks () =
  let g = D.create ~n:4 ~edges:[ (0, 1); (1, 2); (3, 2) ] in
  let t = Cond.compute g in
  Alcotest.(check int) "two sources" 2 (List.length (Cond.sources t));
  Alcotest.(check int) "one sink" 1 (List.length (Cond.sinks t))

(* ---------- Weak components ---------- *)

let test_weak_components () =
  let g = D.create ~n:6 ~edges:[ (0, 1); (2, 1); (3, 4) ] in
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ] (Weak.compute g);
  Alcotest.(check bool) "same" true (Weak.same g 0 2);
  Alcotest.(check bool) "not same" false (Weak.same g 0 5);
  Alcotest.(check int) "count" 3 (Weak.count g)

(* ---------- Source components and the lemmas ---------- *)

let test_cycle_single_source () =
  let g = Gen.cycle 7 in
  Alcotest.(check int) "one source of size 7" 1 (Source.source_component_count g);
  Alcotest.(check (list (list int)))
    "the cycle itself"
    [ List.init 7 Fun.id ]
    (Source.source_components g)

let test_union_of_cliques_sources () =
  let g = Gen.union_of_cliques ~sizes:[ 3; 3; 2 ] in
  Alcotest.(check int) "three sources" 3 (Source.source_component_count g);
  Alcotest.(check bool) "lemma6" true (Source.lemma6_holds g);
  Alcotest.(check bool) "lemma7" true (Source.lemma7_holds g)

let test_decision_source_reachability () =
  (* clique {0,1} feeding a chain 2 -> 3 *)
  let g = D.create ~n:4 ~edges:[ (0, 1); (1, 0); (1, 2); (2, 3) ] in
  Alcotest.(check (list int)) "p3's source" [ 0; 1 ] (Source.decision_source g 3);
  Alcotest.(check (list int)) "p0's own" [ 0; 1 ] (Source.decision_source g 0)

let test_reachable_sources_multiple () =
  (* two cliques feeding a common vertex *)
  let g =
    D.create ~n:5 ~edges:[ (0, 1); (1, 0); (2, 3); (3, 2); (1, 4); (3, 4) ]
  in
  Alcotest.(check int) "p4 reaches both" 2
    (List.length (Source.reachable_sources g 4));
  Alcotest.(check (list int)) "deterministic pick" [ 0; 1 ]
    (Source.decision_source g 4)

let test_max_source_components_bound () =
  Alcotest.(check int) "floor(10/3)" 3 (Source.max_source_components ~n:10 ~delta:2);
  Alcotest.(check int) "floor(5/5)" 1 (Source.max_source_components ~n:5 ~delta:4)

let test_unique_source_majority_clique () =
  let g = D.complete 6 in
  Alcotest.(check bool) "unique" true (Source.unique_source_if_majority g);
  Alcotest.(check int) "count 1" 1 (Source.source_component_count g)

let prop_lemma6 =
  QCheck.Test.make ~name:"Lemma 6 on random min-in-degree graphs" ~count:120
    QCheck.(triple small_int (int_range 2 12) (int_range 1 6))
    (fun (seed, n, delta) ->
      QCheck.assume (delta < n);
      let rng = Rng.create ~seed in
      let g = Gen.min_in_degree rng ~n ~delta in
      D.min_in_degree g >= delta && Source.lemma6_holds g)

let prop_lemma7 =
  QCheck.Test.make ~name:"Lemma 7 on random min-in-degree graphs" ~count:120
    QCheck.(triple small_int (int_range 2 12) (int_range 1 6))
    (fun (seed, n, delta) ->
      QCheck.assume (delta < n);
      let rng = Rng.create ~seed in
      let g = Gen.min_in_degree rng ~n ~delta in
      Source.lemma7_holds g)

let prop_source_count_bound =
  QCheck.Test.make ~name:"#sources <= floor(n/(delta+1))" ~count:120
    QCheck.(triple small_int (int_range 2 12) (int_range 1 6))
    (fun (seed, n, delta) ->
      QCheck.assume (delta < n);
      let rng = Rng.create ~seed in
      let g = Gen.min_in_degree rng ~n ~delta in
      Source.source_component_count g
      <= Source.max_source_components ~n ~delta:(D.min_in_degree g))

let prop_unique_source_majority =
  QCheck.Test.make ~name:"2*delta >= n => unique source" ~count:80
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let delta = (n + 1) / 2 in
      QCheck.assume (delta < n && delta > 0);
      let rng = Rng.create ~seed in
      let g = Gen.min_in_degree rng ~n ~delta in
      Source.unique_source_if_majority g && Source.source_component_count g = 1)

let prop_condensation_topological =
  QCheck.Test.make ~name:"condensation topological order on random graphs"
    ~count:80
    QCheck.(pair small_int (int_range 1 9))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Gen.gnp rng ~n ~p:0.35 in
      let t = Cond.compute g in
      let order = Cond.topological_order t in
      let pos = Array.make t.Cond.scc.Scc.count 0 in
      List.iteri (fun i c -> pos.(c) <- i) order;
      List.for_all
        (fun (u, v) ->
          let cu = Cond.component_of t u and cv = Cond.component_of t v in
          cu = cv || pos.(cu) < pos.(cv))
        (D.edges g))

let prop_transpose_preserves_scc =
  QCheck.Test.make ~name:"transpose preserves strong components" ~count:80
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Gen.gnp rng ~n ~p:0.3 in
      let r = Scc.compute g and rt = Scc.compute (D.transpose g) in
      r.Scc.count = rt.Scc.count
      && List.for_all
           (fun (u, v) ->
             Scc.same_component r u v = Scc.same_component rt u v)
           (Ksa_prim.Listx.cartesian (D.vertices g) (D.vertices g)))

let prop_induced_subgraph_edges =
  QCheck.Test.make ~name:"induced subgraph keeps exactly internal edges"
    ~count:80
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let vs = List.filter (fun v -> v mod 2 = 0) (D.vertices g) in
      let sub, back = D.induced g vs in
      let expected =
        List.filter
          (fun (u, v) -> List.mem u vs && List.mem v vs)
          (D.edges g)
      in
      let got =
        List.map (fun (u, v) -> (back.(u), back.(v))) (D.edges sub)
      in
      List.sort compare got = List.sort compare expected)

let prop_knowledge_graph_shape =
  QCheck.Test.make ~name:"knowledge graph: dead vertices isolated" ~count:60
    QCheck.(pair small_int (int_range 3 10))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let alive = List.filter (fun p -> p mod 2 = 0) (List.init n Fun.id) in
      QCheck.assume (List.length alive >= 2);
      let wait_for = List.length alive - 1 in
      let g = Gen.knowledge_graph rng ~n ~alive ~wait_for in
      List.for_all
        (fun v ->
          if List.mem v alive then D.in_degree g v = wait_for
          else D.in_degree g v = 0 && D.out_degree g v = 0)
        (List.init n Fun.id))

let suites =
  [
    ( "dgraph.digraph",
      [
        Alcotest.test_case "create dedups" `Quick test_create_dedup;
        Alcotest.test_case "self loops dropped" `Quick test_self_loops_dropped;
        Alcotest.test_case "invalid vertex" `Quick test_invalid_vertex;
        Alcotest.test_case "degrees" `Quick test_degrees;
        Alcotest.test_case "has_edge" `Quick test_has_edge;
        Alcotest.test_case "transpose" `Quick test_transpose;
        Alcotest.test_case "complete" `Quick test_complete;
        Alcotest.test_case "induced" `Quick test_induced;
        Alcotest.test_case "of_pred_lists" `Quick test_of_pred_lists;
        Alcotest.test_case "add_edges" `Quick test_add_edges;
      ] );
    ( "dgraph.scc",
      [
        Alcotest.test_case "cycle" `Quick test_scc_cycle;
        Alcotest.test_case "dag" `Quick test_scc_dag;
        Alcotest.test_case "two cycles" `Quick test_scc_two_cycles;
        Alcotest.test_case "components listing" `Quick test_scc_components_listing;
        Alcotest.test_case "deep path (iterative)" `Slow test_scc_deep_path_no_overflow;
      ] );
    ( "dgraph.condensation",
      [
        Alcotest.test_case "acyclic" `Quick test_condensation_acyclic;
        Alcotest.test_case "topological order" `Quick test_condensation_topological;
        Alcotest.test_case "sources and sinks" `Quick test_sources_sinks;
      ] );
    ( "dgraph.weak",
      [ Alcotest.test_case "components" `Quick test_weak_components ] );
    ( "dgraph.source",
      [
        Alcotest.test_case "cycle single source" `Quick test_cycle_single_source;
        Alcotest.test_case "cliques" `Quick test_union_of_cliques_sources;
        Alcotest.test_case "decision source" `Quick test_decision_source_reachability;
        Alcotest.test_case "multiple sources" `Quick test_reachable_sources_multiple;
        Alcotest.test_case "max bound" `Quick test_max_source_components_bound;
        Alcotest.test_case "majority unique" `Quick test_unique_source_majority_clique;
      ] );
    Test_util.qsuite "dgraph.properties"
      [
        prop_scc_matches_mutual_reachability;
        prop_lemma6;
        prop_lemma7;
        prop_source_count_bound;
        prop_unique_source_majority;
        prop_condensation_topological;
        prop_transpose_preserves_scc;
        prop_induced_subgraph_edges;
        prop_knowledge_graph_shape;
      ];
  ]
