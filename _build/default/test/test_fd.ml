module Sim = Ksa_sim
module Fd = Ksa_fd
module FP = Sim.Failure_pattern
module View = Sim.Fd_view
module Rng = Ksa_prim.Rng
module H = Fd.History

let check_ok = Test_util.check_ok
let check_err = Test_util.check_err

(* ---------- History combinators ---------- *)

let const_history ~n ~horizon view = H.make ~n ~horizon (fun ~time:_ ~me:_ -> view)

let test_history_clamp () =
  let h =
    H.make ~n:1 ~horizon:5 (fun ~time ~me:_ -> View.Lonely (time >= 5))
  in
  Alcotest.(check bool) "beyond horizon clamps" true
    (H.oracle h ~time:100 ~me:0 = View.Lonely true)

let test_history_splice () =
  let ha = const_history ~n:2 ~horizon:3 (View.Lonely true) in
  let hb = const_history ~n:2 ~horizon:3 (View.Lonely false) in
  let s = H.splice ~inside:[ 0 ] ha hb in
  Alcotest.(check bool) "inside sees ha" true (s.H.view ~time:1 ~me:0 = View.Lonely true);
  Alcotest.(check bool) "outside sees hb" true (s.H.view ~time:1 ~me:1 = View.Lonely false)

let test_history_combine () =
  let ha = const_history ~n:1 ~horizon:2 (View.Quorum [ 0 ]) in
  let hb = const_history ~n:1 ~horizon:2 (View.Leaders [ 0 ]) in
  let c = H.combine ha hb in
  match c.H.view ~time:1 ~me:0 with
  | View.Pair (View.Quorum _, View.Leaders _) -> ()
  | v -> Alcotest.failf "unexpected %a" View.pp v

let test_history_override () =
  let h = const_history ~n:1 ~horizon:2 (View.Lonely false) in
  let h' = H.override_from ~time:5 h (fun ~me:_ -> View.Lonely true) in
  Alcotest.(check bool) "before" true (h'.H.view ~time:4 ~me:0 = View.Lonely false);
  Alcotest.(check bool) "after" true (h'.H.view ~time:5 ~me:0 = View.Lonely true)

let test_fd_view_accessors () =
  let v = View.Pair (View.Quorum [ 1 ], View.Pair (View.Leaders [ 2 ], View.Lonely true)) in
  Alcotest.(check (option (list int))) "quorum" (Some [ 1 ]) (View.quorum v);
  Alcotest.(check (option (list int))) "leaders" (Some [ 2 ]) (View.leaders v);
  Alcotest.(check (option bool)) "lonely" (Some true) (View.lonely v)

(* ---------- Sigma ---------- *)

let test_sigma_blocks_valid () =
  List.iter
    (fun (n, k, dead) ->
      let pattern = FP.initial_dead ~n ~dead in
      let h = Fd.Sigma.blocks ~k ~pattern ~stab:3 ~horizon:8 () in
      check_ok
        (Printf.sprintf "blocks n=%d k=%d" n k)
        (Fd.Sigma.validate ~k ~pattern h))
    [ (4, 1, []); (4, 2, [ 3 ]); (6, 3, [ 0; 5 ]); (5, 4, [ 1 ]); (3, 1, [ 2 ]) ]

let test_sigma_majority_valid () =
  let pattern = FP.initial_dead ~n:5 ~dead:[ 4 ] in
  let rng = Rng.create ~seed:1 in
  let h = Fd.Sigma.majority ~pattern ~rng ~stab:4 ~horizon:10 () in
  check_ok "majority sigma" (Fd.Sigma.validate ~k:1 ~pattern h)

let test_sigma_majority_requires_majority () =
  let pattern = FP.initial_dead ~n:4 ~dead:[ 0; 1 ] in
  Alcotest.(check bool) "invalid_arg" true
    (match
       Fd.Sigma.majority ~pattern ~rng:(Rng.create ~seed:1) ~stab:1 ~horizon:4 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sigma_intersection_violation_detected () =
  (* k=1 but two disjoint constant quorums: must be caught *)
  let pattern = FP.none ~n:4 in
  let h =
    H.make ~n:4 ~horizon:4 (fun ~time:_ ~me ->
        View.Quorum (if me < 2 then [ 0; 1 ] else [ 2; 3 ]))
  in
  (match Fd.Sigma.find_intersection_violation ~k:1 ~pattern h with
  | Some [ (_, _); (_, _) ] -> ()
  | Some w -> Alcotest.failf "wrong witness size %d" (List.length w)
  | None -> Alcotest.fail "violation missed");
  (* the same history is a fine Sigma_2 *)
  Alcotest.(check bool) "valid as sigma_2" true
    (Fd.Sigma.find_intersection_violation ~k:2 ~pattern h = None)

let test_sigma_liveness_failure_detected () =
  let pattern = FP.initial_dead ~n:3 ~dead:[ 2 ] in
  (* quorums always include the dead process: liveness must fail *)
  let h = const_history ~n:3 ~horizon:6 (View.Quorum [ 0; 1; 2 ]) in
  check_err "liveness" (Fd.Sigma.check_liveness ~pattern h)

let test_sigma_crashed_output_whole_system () =
  let pattern = FP.initial_dead ~n:4 ~dead:[ 1 ] in
  let h = Fd.Sigma.blocks ~k:2 ~pattern ~stab:2 ~horizon:6 () in
  Alcotest.(check (option (list int)))
    "crashed outputs Pi" (Some [ 0; 1; 2; 3 ])
    (View.quorum (h.H.view ~time:3 ~me:1))

(* ---------- Omega ---------- *)

let test_omega_valid () =
  let pattern = FP.initial_dead ~n:5 ~dead:[ 0 ] in
  let h = Fd.Omega.gen ~k:2 ~pattern ~leaders:[ 0; 3 ] ~tgst:4 ~horizon:10 () in
  check_ok "omega k=2" (Fd.Omega.validate ~k:2 ~pattern h)

let test_omega_needs_correct_leader () =
  let pattern = FP.initial_dead ~n:3 ~dead:[ 0; 1 ] in
  Alcotest.(check bool) "invalid_arg" true
    (match Fd.Omega.gen ~k:2 ~pattern ~leaders:[ 0; 1 ] ~tgst:1 ~horizon:4 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_omega_validity_violation () =
  let h = const_history ~n:3 ~horizon:4 (View.Leaders [ 0; 1 ]) in
  check_err "k=1 but output size 2" (Fd.Omega.check_validity ~k:1 h)

let test_omega_no_stabilization () =
  let pattern = FP.none ~n:3 in
  (* different processes disagree forever *)
  let h =
    H.make ~n:3 ~horizon:6 (fun ~time:_ ~me -> View.Leaders [ me ])
  in
  check_err "no common LD" (Fd.Omega.check_eventual_leadership ~pattern h)

let test_omega_eventual_leadership_time () =
  let pattern = FP.none ~n:4 in
  let h = Fd.Omega.gen ~k:1 ~pattern ~leaders:[ 2 ] ~tgst:5 ~horizon:12 () in
  match Fd.Omega.check_eventual_leadership ~pattern h with
  | Ok (tgst, ld) ->
      Alcotest.(check (list int)) "LD" [ 2 ] ld;
      Alcotest.(check bool) "tgst <= 5" true (tgst <= 5)
  | Error e -> Alcotest.fail e

let test_omega_random_chaos () =
  let pattern = FP.none ~n:6 in
  let chaos = Fd.Omega.random_chaos ~rng:(Rng.create ~seed:3) ~n:6 ~k:3 in
  let h = Fd.Omega.gen ~chaos ~k:3 ~pattern ~leaders:[ 0; 1; 2 ] ~tgst:6 ~horizon:12 () in
  check_ok "random chaos omega" (Fd.Omega.validate ~k:3 ~pattern h)

(* ---------- Partition FD and Lemma 9 ---------- *)

let spec_of groups leaders = { Fd.Partition_fd.groups; leaders; tgst = 4; stab = 3 }

let test_partition_fd_valid_and_lemma9 () =
  List.iter
    (fun (n, groups, dead) ->
      let pattern = FP.initial_dead ~n ~dead in
      let k = List.length groups in
      let leaders = List.map List.hd groups in
      let spec = spec_of groups leaders in
      let h = Fd.Partition_fd.gen spec ~pattern ~horizon:10 in
      check_ok "definition 7"
        (Fd.Partition_fd.validate_partition_property spec ~pattern h);
      check_ok "lemma 9" (Fd.Partition_fd.lemma9_check ~k ~pattern h))
    [
      (4, [ [ 0 ]; [ 1 ]; [ 2; 3 ] ], []);
      (5, [ [ 0; 1 ]; [ 2; 3; 4 ] ], [ 1 ]);
      (6, [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3; 4; 5 ] ], [ 0; 2 ]);
    ]

let test_partition_fd_rejects_bad_spec () =
  let pattern = FP.none ~n:4 in
  Alcotest.(check bool) "overlap rejected" true
    (match
       Fd.Partition_fd.gen (spec_of [ [ 0; 1 ]; [ 1; 2; 3 ] ] [ 0; 1 ]) ~pattern
         ~horizon:5
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "not covering rejected" true
    (match
       Fd.Partition_fd.gen (spec_of [ [ 0 ]; [ 1 ] ] [ 0; 1 ]) ~pattern ~horizon:5
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_partition_confinement_catches_escape () =
  (* a history whose quorums cross group boundaries must fail Def. 7 *)
  let pattern = FP.none ~n:4 in
  let spec = spec_of [ [ 0; 1 ]; [ 2; 3 ] ] [ 0; 2 ] in
  let h =
    H.combine
      (const_history ~n:4 ~horizon:10 (View.Quorum [ 0; 1; 2; 3 ]))
      (const_history ~n:4 ~horizon:10 (View.Leaders [ 0; 2 ]))
  in
  check_err "escape caught"
    (Fd.Partition_fd.validate_partition_property spec ~pattern h)

let prop_lemma9_random_partitions =
  QCheck.Test.make ~name:"Lemma 9 over random partitions/patterns" ~count:40
    QCheck.(triple small_int (int_range 3 7) (int_range 2 4))
    (fun (seed, n, k) ->
      QCheck.assume (k <= n - 1);
      let rng = Rng.create ~seed in
      (* random partition into k nonempty groups *)
      let pids = Rng.shuffle rng (List.init n Fun.id) in
      let cuts = List.sort compare (Rng.sample rng (k - 1) (Ksa_prim.Listx.range 1 n)) in
      let groups =
        let rec slice start = function
          | [] -> [ Ksa_prim.Listx.drop start pids ]
          | c :: rest ->
              List.filteri (fun i _ -> i >= start && i < c) pids :: slice c rest
        in
        slice 0 cuts
      in
      (* random correct member per run; kill some others *)
      let dead = List.filter (fun p -> Rng.bool rng && p <> List.hd pids) pids in
      let pattern = FP.initial_dead ~n ~dead in
      let leaders =
        List.map
          (fun g ->
            match List.filter (fun p -> not (List.mem p dead)) g with
            | p :: _ -> p
            | [] -> List.hd g)
          groups
      in
      QCheck.assume (not (Ksa_prim.Listx.disjoint leaders (FP.correct pattern)));
      let spec = spec_of groups leaders in
      let h = Fd.Partition_fd.gen spec ~pattern ~horizon:9 in
      Fd.Partition_fd.validate_partition_property spec ~pattern h = Ok ()
      && Fd.Partition_fd.lemma9_check ~k ~pattern h = Ok ())

(* ---------- Loneliness ---------- *)

let test_loneliness_valid () =
  let pattern = FP.initial_dead ~n:3 ~dead:[ 0; 2 ] in
  (* p1 is sole correct; witness is p0 *)
  let h = Fd.Loneliness.gen ~witness:0 ~pattern ~horizon:6 () in
  check_ok "L" (Fd.Loneliness.validate ~pattern h);
  Alcotest.(check (option bool)) "p1 lonely" (Some true)
    (View.lonely (h.H.view ~time:6 ~me:1))

let test_loneliness_liars_allowed () =
  let pattern = FP.none ~n:4 in
  let h = Fd.Loneliness.gen ~liars:[ 1; 2 ] ~witness:0 ~pattern ~horizon:6 () in
  check_ok "spurious trues are legal" (Fd.Loneliness.validate ~pattern h)

let test_loneliness_safety_violation () =
  let pattern = FP.none ~n:2 in
  let h = const_history ~n:2 ~horizon:4 (View.Lonely true) in
  check_err "everyone lonely" (Fd.Loneliness.validate ~pattern h)

let test_loneliness_witness_cannot_be_sole () =
  let pattern = FP.initial_dead ~n:2 ~dead:[ 1 ] in
  Alcotest.(check bool) "invalid_arg" true
    (match Fd.Loneliness.gen ~witness:0 ~pattern ~horizon:4 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Transform (Theorem 10, condition C) ---------- *)

let test_gamma_to_omega2 () =
  let pattern = FP.none ~n:6 in
  let dbar = [ 0; 1; 2; 3 ] in
  let h =
    Fd.Transform.gamma_gen ~k:3 ~dbar ~chosen:(1, 3) ~pattern ~tgst:5 ~horizon:12 ()
  in
  check_ok "gamma is an omega_3" (Fd.Omega.validate ~k:3 ~pattern h);
  let o2 = Fd.Transform.omega2_of_gamma ~dbar h in
  check_ok "transformed output is omega_2 within dbar"
    (Fd.Transform.validate_omega_within ~k:2 ~subsystem:dbar ~pattern o2);
  (* stabilized pair is exactly the chosen one *)
  Alcotest.(check (option (list int))) "chosen pair" (Some [ 1; 3 ])
    (View.leaders (o2.H.view ~time:12 ~me:0))

let test_gamma_rejects_bad_choice () =
  let pattern = FP.none ~n:5 in
  Alcotest.(check bool) "pair outside dbar" true
    (match
       Fd.Transform.gamma_gen ~k:2 ~dbar:[ 0; 1 ] ~chosen:(0, 4) ~pattern ~tgst:2
         ~horizon:6 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suites =
  [
    ( "fd.history",
      [
        Alcotest.test_case "clamp" `Quick test_history_clamp;
        Alcotest.test_case "splice" `Quick test_history_splice;
        Alcotest.test_case "combine" `Quick test_history_combine;
        Alcotest.test_case "override_from" `Quick test_history_override;
        Alcotest.test_case "view accessors" `Quick test_fd_view_accessors;
      ] );
    ( "fd.sigma",
      [
        Alcotest.test_case "blocks valid" `Quick test_sigma_blocks_valid;
        Alcotest.test_case "majority valid" `Quick test_sigma_majority_valid;
        Alcotest.test_case "majority needs majority" `Quick test_sigma_majority_requires_majority;
        Alcotest.test_case "intersection violation" `Quick test_sigma_intersection_violation_detected;
        Alcotest.test_case "liveness violation" `Quick test_sigma_liveness_failure_detected;
        Alcotest.test_case "crashed outputs Pi" `Quick test_sigma_crashed_output_whole_system;
      ] );
    ( "fd.omega",
      [
        Alcotest.test_case "valid" `Quick test_omega_valid;
        Alcotest.test_case "needs correct leader" `Quick test_omega_needs_correct_leader;
        Alcotest.test_case "validity violation" `Quick test_omega_validity_violation;
        Alcotest.test_case "no stabilization" `Quick test_omega_no_stabilization;
        Alcotest.test_case "eventual leadership time" `Quick test_omega_eventual_leadership_time;
        Alcotest.test_case "random chaos" `Quick test_omega_random_chaos;
      ] );
    ( "fd.partition",
      [
        Alcotest.test_case "valid + lemma 9" `Quick test_partition_fd_valid_and_lemma9;
        Alcotest.test_case "bad specs rejected" `Quick test_partition_fd_rejects_bad_spec;
        Alcotest.test_case "confinement enforced" `Quick test_partition_confinement_catches_escape;
      ] );
    ( "fd.loneliness",
      [
        Alcotest.test_case "valid" `Quick test_loneliness_valid;
        Alcotest.test_case "liars allowed" `Quick test_loneliness_liars_allowed;
        Alcotest.test_case "safety violation" `Quick test_loneliness_safety_violation;
        Alcotest.test_case "witness constraint" `Quick test_loneliness_witness_cannot_be_sole;
      ] );
    ( "fd.transform",
      [
        Alcotest.test_case "gamma -> omega2" `Quick test_gamma_to_omega2;
        Alcotest.test_case "bad chosen pair" `Quick test_gamma_rejects_bad_choice;
      ] );
    Test_util.qsuite "fd.properties" [ prop_lemma9_random_partitions ];
  ]
