(* Early end-to-end smoke tests: engine + Section VI protocol. *)

module Rng = Ksa_prim.Rng
module Sim = Ksa_sim

module Kset5 = Ksa_algo.Kset_flp.Make (struct
  let l = 3
end)

module E5 = Sim.Engine.Make (Kset5)

let run_fair ~seed ~n ~dead =
  let rng = Rng.create ~seed in
  let pattern = Sim.Failure_pattern.initial_dead ~n ~dead in
  E5.run ~n
    ~inputs:(Sim.Value.distinct_inputs n)
    ~pattern
    (Sim.Adversary.fair ~rng)

let test_failure_free () =
  (* n=5, L=3, f=0: everyone decides; at most floor(5/3)=1 value *)
  let run = run_fair ~seed:42 ~n:5 ~dead:[] in
  Alcotest.(check bool) "all correct decided" true (Sim.Run.all_correct_decided run);
  Alcotest.(check bool)
    "at most 1 distinct decision" true
    (Sim.Run.distinct_decisions run <= 1)

let test_two_dead () =
  (* n=5, L=3 = n-f with f=2: k-set for k >= floor(5/3) = 1 *)
  let run = run_fair ~seed:7 ~n:5 ~dead:[ 0; 3 ] in
  Alcotest.(check bool) "all correct decided" true (Sim.Run.all_correct_decided run);
  Alcotest.(check bool)
    "at most 1 distinct decision" true
    (Sim.Run.distinct_decisions run <= 1)

let test_many_seeds () =
  for seed = 1 to 50 do
    let run = run_fair ~seed ~n:5 ~dead:[ 1 ] in
    if not (Sim.Run.all_correct_decided run) then
      Alcotest.failf "seed %d: %a" seed Sim.Run.pp_summary run;
    if Sim.Run.distinct_decisions run > 1 then
      Alcotest.failf "seed %d: too many decisions %a" seed Sim.Run.pp_summary run
  done

let suites =
  [
    ( "smoke",
      [
        Alcotest.test_case "kset-flp failure-free" `Quick test_failure_free;
        Alcotest.test_case "kset-flp two initially dead" `Quick test_two_dead;
        Alcotest.test_case "kset-flp 50 seeds" `Quick test_many_seeds;
      ] );
  ]
