(* The ABD register emulation (the paper's [9] substrate) and its
   atomicity checker. *)

module Sim = Ksa_sim
module Sm = Ksa_sm
module FP = Sim.Failure_pattern
module Adv = Sim.Adversary
module Rng = Ksa_prim.Rng
module Reg = Sm.Register

let distinct = Sim.Value.distinct_inputs

module Torture = Sm.Abd.Make (struct
  let script = Sm.Abd.write_then_read_all
  let write_back = true
end)

module E = Sim.Engine.Make (Torture)

let run_torture ~seed ~n ~dead ~adv_kind =
  let pattern = FP.initial_dead ~n ~dead in
  let rng = Rng.create ~seed in
  let adv =
    match adv_kind with
    | `Fair -> Adv.fair ~rng
    | `Lossy -> Adv.fair_lossy ~rng ~p_defer:0.5
    | `Round_robin -> Adv.round_robin ()
  in
  let run, config =
    E.run_full ~max_steps:60_000 ~n ~inputs:(distinct n) ~pattern adv
  in
  (run, Torture.ops_of run ~state_of:(E.state_of config))

(* ---------- checker unit tests on synthetic histories ---------- *)

let w ~client ~ts ~value ~invoked ~responded =
  { Reg.kind = Reg.Write; client; owner = client; ts; value; invoked; responded }

let r ~client ~owner ~ts ~value ~invoked ~responded =
  { Reg.kind = Reg.Read; client; owner; ts; value; invoked; responded }

let test_checker_accepts_serial () =
  let h =
    [
      w ~client:0 ~ts:1 ~value:5 ~invoked:1 ~responded:2;
      r ~client:1 ~owner:0 ~ts:1 ~value:5 ~invoked:3 ~responded:4;
      w ~client:0 ~ts:2 ~value:6 ~invoked:5 ~responded:6;
      r ~client:2 ~owner:0 ~ts:2 ~value:6 ~invoked:7 ~responded:8;
    ]
  in
  Test_util.check_ok "serial" (Reg.check_atomic h);
  Test_util.check_ok "swmr" (Reg.check_write_once_timestamps h)

let test_checker_detects_new_old_inversion () =
  let h =
    [
      w ~client:0 ~ts:1 ~value:5 ~invoked:1 ~responded:2;
      w ~client:0 ~ts:2 ~value:6 ~invoked:3 ~responded:4;
      r ~client:1 ~owner:0 ~ts:2 ~value:6 ~invoked:5 ~responded:6;
      r ~client:2 ~owner:0 ~ts:1 ~value:5 ~invoked:7 ~responded:8;
    ]
  in
  Test_util.check_err "inversion" (Reg.check_atomic h)

let test_checker_detects_stale_read () =
  let h =
    [
      w ~client:0 ~ts:1 ~value:5 ~invoked:1 ~responded:2;
      r ~client:1 ~owner:0 ~ts:0 ~value:(-1) ~invoked:3 ~responded:4;
    ]
  in
  Test_util.check_err "missed completed write" (Reg.check_atomic h)

let test_checker_detects_future_read () =
  let h =
    [
      r ~client:1 ~owner:0 ~ts:1 ~value:5 ~invoked:1 ~responded:2;
      w ~client:0 ~ts:1 ~value:5 ~invoked:3 ~responded:4;
    ]
  in
  Test_util.check_err "read from the future" (Reg.check_atomic h)

let test_checker_detects_phantom_value () =
  let h = [ r ~client:1 ~owner:0 ~ts:3 ~value:9 ~invoked:1 ~responded:2 ] in
  Test_util.check_err "never written" (Reg.check_atomic h)

let test_checker_accepts_pending_write_visibility () =
  (* a read may return a write that never completes *)
  let h =
    [
      w ~client:0 ~ts:1 ~value:5 ~invoked:1 ~responded:max_int;
      r ~client:1 ~owner:0 ~ts:1 ~value:5 ~invoked:3 ~responded:4;
    ]
  in
  Test_util.check_ok "pending write readable" (Reg.check_atomic h)

let test_checker_detects_non_owner_write () =
  let h = [ { (w ~client:1 ~ts:1 ~value:5 ~invoked:1 ~responded:2) with Reg.owner = 0 } ] in
  Test_util.check_err "non-owner" (Reg.check_write_once_timestamps h)

(* ---------- the emulation end to end ---------- *)

let expected_ops n = 2 + (2 * n) (* two writes, two read sweeps *)

let test_abd_failure_free () =
  for seed = 1 to 10 do
    let n = 4 in
    let run, ops = run_torture ~seed ~n ~dead:[] ~adv_kind:`Fair in
    Alcotest.(check bool) "all decided" true (Sim.Run.all_correct_decided run);
    let completed =
      List.length (List.filter (fun (o : Reg.op) -> o.responded <> max_int) ops)
    in
    Alcotest.(check int) "all ops completed" (n * expected_ops n) completed;
    Test_util.check_ok "atomic" (Reg.check_atomic ops);
    Test_util.check_ok "swmr" (Reg.check_write_once_timestamps ops)
  done

let test_abd_minority_crashes () =
  List.iter
    (fun (n, dead) ->
      for seed = 1 to 8 do
        let run, ops = run_torture ~seed ~n ~dead ~adv_kind:`Fair in
        Alcotest.(check bool) "correct processes finish" true
          (Sim.Run.all_correct_decided run);
        Test_util.check_ok "atomic" (Reg.check_atomic ops)
      done)
    [ (5, [ 1 ]); (5, [ 0; 3 ]); (4, [ 2 ]); (3, [ 1 ]) ]

let test_abd_lossy () =
  for seed = 1 to 8 do
    let run, ops = run_torture ~seed ~n:4 ~dead:[ 3 ] ~adv_kind:`Lossy in
    Alcotest.(check bool) "finishes despite deferrals" true
      (Sim.Run.all_correct_decided run);
    Test_util.check_ok "atomic" (Reg.check_atomic ops)
  done

let test_abd_read_your_writes () =
  (* deterministic round-robin: every read of your own register after
     your write returns your latest value *)
  let n = 4 in
  let run, ops = run_torture ~seed:1 ~n ~dead:[] ~adv_kind:`Round_robin in
  ignore run;
  List.iter
    (fun (o : Reg.op) ->
      if o.kind = Reg.Read && Sim.Pid.equal o.client o.owner then begin
        (* the second self-read must see the second write *)
        let own_writes =
          List.filter
            (fun (x : Reg.op) ->
              x.kind = Reg.Write && Sim.Pid.equal x.client o.client
              && x.responded < o.invoked)
            ops
        in
        let latest = List.fold_left (fun acc (x : Reg.op) -> max acc x.ts) 0 own_writes in
        if o.ts < latest then
          Alcotest.failf "p%d self-read ts %d < own write ts %d" o.client o.ts latest
      end)
    ops

let test_abd_values_traceable () =
  let n = 5 in
  let _, ops = run_torture ~seed:9 ~n ~dead:[ 4 ] ~adv_kind:`Fair in
  (* every read value of ts >= 1 equals the input or the second-round
     constant of its register owner *)
  List.iter
    (fun (o : Reg.op) ->
      if o.kind = Reg.Read && o.ts >= 1 then
        Alcotest.(check bool) "traceable value" true
          (o.value = o.owner || o.value = 1000 + o.owner))
    ops

(* ---------- the write-back ablation ---------- *)

(* an adversary that executes a fixed list of (pid, allowed senders)
   steps, delivering exactly the pending messages from those senders *)
let scripted steps =
  let remaining = ref steps in
  let next (obs : Adv.obs) =
    match !remaining with
    | [] -> Adv.Halt
    | (pid, allowed) :: rest ->
        remaining := rest;
        let deliver =
          Adv.pending_for ~allow:(fun src _ -> List.mem src allowed) obs pid
        in
        Adv.Step { pid; deliver }
  in
  { Adv.describe = "scripted"; next }

(* n = 5: p0 writes; p1 reads via a quorum that saw the write; p2 then
   reads via a quorum that did not.  Without the write-back this is a
   new/old inversion; with it, p1's read cannot complete on this
   schedule, so atomicity survives. *)
let inversion_schedule =
  [
    (0, []);        (* p0 starts its write *)
    (1, [ 0 ]);     (* p1 sees the write, starts its read *)
    (0, [ 1 ]);     (* p0 answers p1's read request *)
    (3, [ 1 ]);     (* p3 answers it too (with the old pair) *)
    (1, [ 0; 3 ]);  (* p1 has 3 responses: max ts wins *)
    (2, []);        (* p2 starts its read — after p1's response *)
    (3, [ 2 ]);     (* p3 and p4 answer with the old pair *)
    (4, [ 2 ]);
    (2, [ 3; 4 ]);  (* p2 returns the OLD timestamp *)
  ]

let run_ablation ~write_back =
  let wb = write_back in
  let module T = Sm.Abd.Make (struct
    let script ~n:_ ~me =
      if me = 0 then [ Sm.Abd.Write_value 7 ]
      else if me <= 2 then [ Sm.Abd.Read_of 0 ]
      else []

    let write_back = wb
  end) in
  let module ET = Sim.Engine.Make (T) in
  let run, config =
    ET.run_full ~n:5 ~inputs:(distinct 5)
      ~pattern:(FP.none ~n:5)
      (scripted inversion_schedule)
  in
  T.ops_of run ~state_of:(ET.state_of config)

let test_write_back_ablation () =
  (* weak variant: the checker catches a genuine new/old inversion *)
  (match Sm.Register.check_atomic (run_ablation ~write_back:false) with
  | Ok () -> Alcotest.fail "weak ABD should exhibit an inversion"
  | Error e ->
      Alcotest.(check bool) "it is the inversion" true
        (String.length e > 0));
  (* full ABD: the same adversarial schedule is harmless *)
  Test_util.check_ok "write-back saves atomicity"
    (Sm.Register.check_atomic (run_ablation ~write_back:true))

(* randomized scripts: atomicity must hold for ANY script under ANY
   sampled schedule with a minority of initial crashes *)
let prop_abd_random_scripts_atomic =
  QCheck.Test.make ~name:"abd: atomicity under random scripts/schedules"
    ~count:40
    QCheck.(triple small_int (int_range 3 5) (int_range 0 1))
    (fun (seed, n, crashes) ->
      let rng = Rng.create ~seed:(seed + 1) in
      let scripts =
        Array.init n (fun _ ->
            List.init
              (2 + Rng.int rng 4)
              (fun _ ->
                if Rng.bool rng then Sm.Abd.Write_value (Rng.int rng 50)
                else Sm.Abd.Read_of (Rng.int rng n)))
      in
      let module T = Sm.Abd.Make (struct
        let script ~n:_ ~me = scripts.(me)
        let write_back = true
      end) in
      let module ET = Sim.Engine.Make (T) in
      let dead = Rng.sample rng crashes (List.init n Fun.id) in
      let pattern = FP.initial_dead ~n ~dead in
      let adv =
        if seed mod 2 = 0 then Adv.fair ~rng
        else Adv.fair_lossy ~rng ~p_defer:0.4
      in
      let run, config =
        ET.run_full ~max_steps:80_000 ~n ~inputs:(distinct n) ~pattern adv
      in
      let ops = T.ops_of run ~state_of:(ET.state_of config) in
      Sim.Run.all_correct_decided run
      && Reg.check_atomic ops = Ok ()
      && Reg.check_write_once_timestamps ops = Ok ())

let suites =
  [
    ( "sm.checker",
      [
        Alcotest.test_case "accepts serial" `Quick test_checker_accepts_serial;
        Alcotest.test_case "new/old inversion" `Quick test_checker_detects_new_old_inversion;
        Alcotest.test_case "stale read" `Quick test_checker_detects_stale_read;
        Alcotest.test_case "future read" `Quick test_checker_detects_future_read;
        Alcotest.test_case "phantom value" `Quick test_checker_detects_phantom_value;
        Alcotest.test_case "pending write readable" `Quick
          test_checker_accepts_pending_write_visibility;
        Alcotest.test_case "non-owner write" `Quick test_checker_detects_non_owner_write;
      ] );
    ( "sm.abd",
      [
        Alcotest.test_case "failure-free torture" `Quick test_abd_failure_free;
        Alcotest.test_case "minority crashes" `Quick test_abd_minority_crashes;
        Alcotest.test_case "lossy schedules" `Quick test_abd_lossy;
        Alcotest.test_case "read your writes" `Quick test_abd_read_your_writes;
        Alcotest.test_case "values traceable" `Quick test_abd_values_traceable;
        Alcotest.test_case "write-back ablation" `Quick test_write_back_ablation;
      ] );
    Test_util.qsuite "sm.properties" [ prop_abd_random_scripts_atomic ];
  ]
