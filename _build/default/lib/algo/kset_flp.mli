(** The Section VI protocol: k-set agreement with initially dead
    processes, generalizing the consensus protocol of Fischer, Lynch
    and Paterson for initial crashes.

    The protocol has two stages, parameterized by L:

    - {b Stage 1}: broadcast a hello message; wait until hellos from
      L−1 distinct other processes have arrived.
    - {b Stage 2}: broadcast a report carrying the proposal value and
      the list of processes heard in stage 1; wait for reports from
      every process heard in stage 1 and, transitively, from every
      process mentioned in any received report.

    The reports determine (consistently across processes) the
    knowledge graph G with an edge u → w iff w heard u in stage 1.
    Every vertex of G has in-degree ≥ L−1, so by Lemmas 6 and 7 each
    process has an incoming path from at least one source component of
    size ≥ L, and there are at most ⌊n/L⌋ source components.  Every
    process decides the proposal of the smallest-id member of the
    smallest source component it is connected to, hence at most
    ⌊n/L⌋ distinct decisions system-wide.

    With L = n − f the protocol tolerates f initially dead processes
    and solves k-set agreement for every k ≥ ⌊n/(n−f)⌋ — and by
    Theorem 8 this is tight: solvability holds iff kn > (k+1)f.
    With L = ⌈(n+1)/2⌉ (and f < n/2) it is exactly the FLP
    initial-crash consensus protocol. *)

val kset_l : n:int -> f:int -> int
(** The paper's choice L = n − f for k-set agreement with f initial
    crashes.  @raise Invalid_argument unless [0 <= f < n]. *)

val consensus_l : n:int -> int
(** L = ⌈(n+1)/2⌉, the FLP consensus choice. *)

val decisions_bound : n:int -> l:int -> int
(** ⌊n/L⌋: the protocol's bound on distinct decisions. *)

val solvable : n:int -> f:int -> k:int -> bool
(** Theorem 8's border: [kn > (k+1)f]. *)

module Make (P : sig
  val l : int
end) : Ksa_sim.Algorithm.S
(** The protocol with the given L.  [init] checks [1 <= l <= n]; with
    L = 1 the protocol degenerates to decide-own-value (the f = n−1
    case of Theorem 8, where only k = n is solvable). *)
