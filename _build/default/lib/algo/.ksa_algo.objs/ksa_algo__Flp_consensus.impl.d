lib/algo/flp_consensus.ml: Kset_flp Printf
