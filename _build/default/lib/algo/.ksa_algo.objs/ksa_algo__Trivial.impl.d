lib/algo/trivial.ml: Format Ksa_sim
