lib/algo/naive_min.ml: Format Fun Ksa_sim List Printf
