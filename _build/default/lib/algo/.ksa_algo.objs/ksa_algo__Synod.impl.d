lib/algo/synod.ml: Format Fun Ksa_sim List
