lib/algo/kset_flp.ml: Array Format Fun Hashtbl Ksa_dgraph Ksa_sim List Printf
