lib/algo/trivial.mli: Ksa_sim
