lib/algo/stack.mli: Ksa_sim
