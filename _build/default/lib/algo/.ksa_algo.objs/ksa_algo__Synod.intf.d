lib/algo/synod.mli: Ksa_sim
