lib/algo/kset_flp.mli: Ksa_sim
