lib/algo/naive_min.mli: Ksa_sim
