lib/algo/flp_consensus.mli: Ksa_sim
