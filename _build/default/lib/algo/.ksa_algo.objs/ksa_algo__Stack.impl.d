lib/algo/stack.ml: Format Fun Ksa_sim List Printf
