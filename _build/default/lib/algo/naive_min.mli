(** A plausible-but-flawed k-set agreement candidate, kept on purpose.

    "Broadcast your value, wait until you hold values from [wait_for]
    distinct processes (your own included), decide the minimum."
    At first sight this looks reasonable for k-set agreement with
    [wait_for = n − f]: it terminates despite f crashes and any two
    processes that hear from each other agree on small values.

    It is wrong, and the paper's Remarks after Theorem 1 describe
    exactly how to see that cheaply: the algorithm has runs satisfying
    (dec-D) — partition the system into groups of size [wait_for] with
    distinct inputs, delay cross-group messages, and each group decides
    its own minimum, giving ⌈n/wait_for⌉ distinct decisions.  The
    Theorem-1 screening harness ({!Ksa_core.Theorem1}) finds such a
    witness automatically; experiment E8 demonstrates it. *)

module Make (P : sig
  val wait_for : int
end) : Ksa_sim.Algorithm.S
(** [init] checks [1 <= wait_for <= n]. *)
