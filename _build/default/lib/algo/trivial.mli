(** The trivial wait-free algorithm: decide your own proposal
    immediately, never communicate.

    Solves k-set agreement exactly when at most k distinct values are
    proposed — in particular n-set agreement wait-free — and is the
    degenerate endpoint of the solvability border (Section V's opening
    observation: with wait-freedom the adversary can delay all
    communication until every process has decided on its own value,
    which this algorithm simply concedes up front).  It satisfies
    strong 2{^Π}-independence. *)

module A : Ksa_sim.Algorithm.S
