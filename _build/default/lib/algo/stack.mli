(** Stacking an in-protocol failure-detector implementation under an
    oracle-based algorithm.

    The failure-detector results of the paper (Section VII) treat
    detectors axiomatically; {!Ksa_fd.Impl} shows the axioms are
    implementable from partial synchrony by {e extracting} histories
    from a recorded run.  This module closes the remaining gap: the
    detector runs {e inside} the protocol.  [Make (F) (A)] is a plain
    oracle-free algorithm whose processes run the detector
    implementation [F] and the oracle-based algorithm [A] side by
    side, feeding [A]'s failure-detector queries from [F]'s local
    state instead of an external history.

    With [F] = {!Heartbeat_fd} (sliding-window majority quorums and a
    min-id leader) and [A] = {!Synod.A}, the stack is a consensus
    protocol for partially synchronous systems with {e no oracle
    whatsoever}: safety is unconditional (quorum outputs are
    majorities or Π, hence intersecting), and termination holds under
    any schedule that eventually stabilizes (e.g.
    {!Ksa_sim.Adversary.eventually_lockstep}) — the concrete form of
    the paper's closing question (iii): models with just enough
    synchrony to circumvent the impossibility. *)

(** A failure-detector implementation living inside each process. *)
module type FD_IMPL = sig
  type state
  type message

  val name : string
  val init : n:int -> me:Ksa_sim.Pid.t -> state

  val on_step :
    state ->
    received:(Ksa_sim.Pid.t * message) list ->
    state * (Ksa_sim.Pid.t * message) list
  (** Called once per process step with the detector-layer messages
      delivered in that step; returns the new detector state and the
      detector-layer messages to send. *)

  val view : state -> Ksa_sim.Fd_view.t
  (** The current query answer, from local state only. *)
end

module Heartbeat_fd (W : sig
  val window : int
  (** Freshness window, in the process's own steps.  Must cover a
      post-stabilization gossip lap (≳ 2n) for the leader to
      stabilize. *)
end) : FD_IMPL
(** Broadcasts a beat each step; trusts the processes heard from
    within the window.  Quorum output: the fresh set when it reaches
    a majority, Π otherwise (so any two outputs intersect, always).
    Leader output: the smallest fresh id. *)

module Make (F : FD_IMPL) (A : Ksa_sim.Algorithm.S) : Ksa_sim.Algorithm.S
(** The stacked algorithm: oracle-free ([uses_fd = false]); decisions
    are [A]'s. *)
