(** The original FLP initial-crash consensus protocol, as the
    L = ⌈(n+1)/2⌉ instance of the generalized Section VI protocol.

    The paper derives its k-set algorithm by generalizing this one
    (Section VI recounts it: wait for L−1 = ⌈(n+1)/2⌉−1 messages in
    stage one, exchange heard-lists in stage two, decide the value of
    the unique initial clique).  With a correct majority (f < n/2
    initial crashes), the knowledge graph's minimum in-degree δ
    satisfies 2δ ≥ n, so the source component is unique (the remark
    after Lemma 7) and every process decides the same value. *)

module For (N : sig
  val n : int
end) : Ksa_sim.Algorithm.S
(** Consensus for a system of exactly [N.n] processes; running it
    with a different engine size is rejected by [init]. *)

val max_initial_crashes : n:int -> int
(** The tolerance ⌈n/2⌉ − 1 (a strict minority). *)
