(** Consensus with the failure detector pair (Σ, Ω): the k = 1
    endpoint of Corollary 13.

    A single-decree Paxos-style protocol in which the quorums are the
    outputs of Σ (Definition 4 with k = 1: any two outputs, at any
    processes and times, intersect) and the proposer role is gated by
    Ω's leader output.  Safety (agreement and validity) rests only on
    quorum intersection, so it holds under arbitrary asynchrony and
    any number of crashes; termination follows from Σ's liveness
    (eventually quorums contain only correct processes) and Ω's
    eventual leadership — matching the fact that (Σ, Ω) is the
    weakest failure detector for consensus with up to n−1 crashes
    (Delporte-Gallet et al., cited as [10]).

    The algorithm requires an oracle whose views contain a [Quorum]
    and a [Leaders] component (e.g.
    [History.combine (Sigma.blocks ~k:1 …) (Omega.gen ~k:1 …)]). *)

module A : Ksa_sim.Algorithm.S

val ballot_owner : n:int -> int -> Ksa_sim.Pid.t
(** Ballots are numbered so that ballot b belongs to process
    [b mod n]; exposed for tests. *)
