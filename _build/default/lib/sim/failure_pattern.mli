(** Failure patterns F(·) (Section II-C).

    A failure pattern maps each time (step index) to the set of
    crashed processes: [p ∈ F(t)] iff no step of [p] occurs at or
    after [t].  We represent it by the crash time of each process —
    the smallest [t] with [p ∈ F(t)] — or its absence for correct
    processes.  Patterns are fixed before a run starts; the engine
    enforces that a crashed process takes no step at or after its
    crash time. *)

type t

val none : n:int -> t
(** The failure-free pattern on [n] processes. *)

val of_crash_times : n:int -> (Pid.t * int) list -> t
(** [of_crash_times ~n assoc]: process [p] crashes at time [t] for
    each [(p, t)] in [assoc]; others are correct.  Crash times must be
    ≥ 0.  @raise Invalid_argument on duplicates, invalid pids or
    negative times. *)

val initial_dead : n:int -> dead:Pid.t list -> t
(** All processes in [dead] crash at time 0 (they never take a
    step): the Section VI "initially dead" failure model. *)

val n : t -> int

val crash_time : t -> Pid.t -> int option

val is_faulty : t -> Pid.t -> bool
(** Membership in F = ⋃{_t} F(t). *)

val faulty : t -> Pid.t list
(** F, sorted. *)

val correct : t -> Pid.t list
(** Π \ F, sorted. *)

val crashed_at : t -> time:int -> Pid.t list
(** F(t): the processes whose crash time is ≤ t, sorted. *)

val is_crashed : t -> Pid.t -> time:int -> bool

val f_count : t -> int
(** |F|: the number of faulty processes. *)

val restrict_to : t -> Pid.t list -> t
(** Pattern for the same universe in which every process {e outside}
    the given set is initially dead and processes inside keep their
    original crash times.  This is the pattern used when running a
    restricted algorithm A|D as if only D existed (proof of
    Theorem 2, condition (D)). *)

val merge : inside:Pid.t list -> t -> t -> t
(** [merge ~inside fa fb] is the pattern that agrees with [fa] on
    processes in [inside] and with [fb] elsewhere — the failure
    pattern surgery of Lemma 11, item 2:
    F{_β'}(t) = (F{_β}(t) ∩ (Π∖D)) ∪ (F{_α}(t) ∩ D).
    Both patterns must have the same size. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
