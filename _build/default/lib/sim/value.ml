type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf v = Format.fprintf ppf "%d" v
let distinct_inputs n = Array.init n Fun.id
let constant_inputs n v = Array.make n v
let count_distinct vs = List.length (List.sort_uniq compare vs)
