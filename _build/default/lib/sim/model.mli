(** The parametrized system models of Dolev, Dwork and Stockmeyer
    ([11]), plus the paper's 6th dimension.

    Section II of the paper adopts the DDS model of computation: 32
    models obtained by choosing each of 5 parameters either
    favourably (F) or unfavourably (U) for the algorithm, extended
    with a 6th dimension for failure detectors.  A model is a
    predicate on runs; this module fixes the parameter space and
    {!Model_check} decides admissibility of a concrete run.

    The engine itself always produces runs of the weakest (all-U,
    except atomic steps) model; stronger models are obtained by
    restricting the adversary (e.g. {!Adversary.round_robin} produces
    lock-step-synchronous processes) and {e checked} after the fact.
    That separation mirrors the paper: Theorem 2 proves impossibility
    in a strong model by exhibiting runs that are admissible even
    under synchronous processes and atomic broadcast. *)

type process_sync =
  | Async_processes
      (** No bound on relative speeds (unfavourable). *)
  | Sync_processes of int
      (** [Sync_processes phi]: in every window of [phi] consecutive
          steps of the run, every process alive throughout the window
          takes at least one step (favourable). *)

type comm_sync =
  | Async_comm  (** Unbounded message delay (unfavourable). *)
  | Sync_comm of int
      (** [Sync_comm delta]: every message to an alive receiver is
          delivered within [delta] steps of being sent (favourable). *)

type order =
  | Unordered  (** Messages may be received in any order (unfavourable). *)
  | Fifo
      (** Per-channel FIFO: messages from p to q are received in the
          order sent (favourable). *)

type transmission =
  | Unicast  (** A step sends at most one message (unfavourable). *)
  | Broadcast
      (** A step's sends are either empty or address every other
          process (atomic broadcast, favourable). *)

type atomicity =
  | Separate
      (** A step may receive or send, not both (unfavourable). *)
  | Atomic_receive_send  (** Receive + send in one atomic step (favourable). *)

type fd_dim = No_fd | With_fd  (** The paper's 6th dimension. *)

type t = {
  processes : process_sync;
  communication : comm_sync;
  order : order;
  transmission : transmission;
  atomicity : atomicity;
  fd : fd_dim;
}

val masync : t
(** M{_ASYNC}, the FLP model: everything asynchronous/unfavourable
    except that steps are atomic (receive a subset, then send) and
    broadcast is allowed — matching the paper's Section II setup. *)

val theorem2 : n:int -> t
(** The strong model of Theorem 2: synchronous processes (Φ = n —
    realized exactly by a round-robin schedule), asynchronous
    communication, atomic one-step broadcast, receive+send atomic,
    no failure detector. *)

val strongest : n:int -> delta:int -> t
(** All five parameters favourable. *)

val with_fd : t -> t

val consensus_impossible : t -> f:int -> bool option
(** What is known (from [11] and FLP) about consensus with up to [f]
    crashes (f ≥ 1) in the model, for n ≥ 2 processes:
    [Some true] — provably impossible; [Some false] — an algorithm
    exists; [None] — not encoded here.  Only the entries the paper
    relies on are encoded: any model with asynchronous communication
    and at least one (possibly non-initial) crash has impossible
    consensus regardless of the other four parameters ([11, Table I],
    used for condition (C) of Theorems 2 and 10); fully synchronous
    models are solvable. *)

val pp : Format.formatter -> t -> unit
