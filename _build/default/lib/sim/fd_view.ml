type t =
  | Quorum of Pid.t list
  | Leaders of Pid.t list
  | Lonely of bool
  | Pair of t * t

let rec quorum = function
  | Quorum q -> Some q
  | Leaders _ | Lonely _ -> None
  | Pair (a, b) -> ( match quorum a with Some q -> Some q | None -> quorum b)

let rec leaders = function
  | Leaders l -> Some l
  | Quorum _ | Lonely _ -> None
  | Pair (a, b) -> ( match leaders a with Some l -> Some l | None -> leaders b)

let rec lonely = function
  | Lonely b -> Some b
  | Quorum _ | Leaders _ -> None
  | Pair (a, b) -> ( match lonely a with Some x -> Some x | None -> lonely b)

let equal a b = a = b

let rec pp ppf = function
  | Quorum q ->
      Format.fprintf ppf "Σ{%a}" (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.pp) q
  | Leaders l ->
      Format.fprintf ppf "Ω{%a}" (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.pp) l
  | Lonely b -> Format.fprintf ppf "L=%b" b
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b

type oracle = time:int -> me:Pid.t -> t
