type delivery_policy = Empty_or_all | Per_sender | All_subsets

type stats = {
  configs_visited : int;
  terminal_runs : int;
  budget_exhausted : bool;
}

type outcome =
  | Safe of stats
  | Violation of { decisions : (Pid.t * Value.t * int) list; reason : string; depth : int }

type resilient_outcome =
  | All_paths_decide of stats
  | Safety_violation of {
      decisions : (Pid.t * Value.t * int) list;
      reason : string;
    }
  | Stuck of {
      crashed : Pid.t list;
      undecided_correct : Pid.t list;
      stats : stats;
    }

module Make (A : Algorithm.S) = struct
  module E = Engine.Make (A)

  exception Found of (Pid.t * Value.t * int) list * string * int

  let subsets xs =
    List.fold_left
      (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
      [ [] ] xs

  (* Delivery choices for [pid]: lists of message ids. *)
  let choices policy (obs : Adversary.obs) pid =
    let mine = List.filter (fun (m : Adversary.pending) -> m.dst = pid) obs.pending in
    let ids = List.map (fun (m : Adversary.pending) -> m.id) mine in
    match policy with
    | Empty_or_all -> if ids = [] then [ [] ] else [ []; ids ]
    | Per_sender ->
        let senders =
          List.sort_uniq compare
            (List.map (fun (m : Adversary.pending) -> m.src) mine)
        in
        let per_sender =
          List.map
            (fun s ->
              List.filter_map
                (fun (m : Adversary.pending) ->
                  if m.src = s then Some m.id else None)
                mine)
            senders
        in
        let all = if List.length senders > 1 then [ ids ] else [] in
        ([] :: per_sender) @ all
    | All_subsets -> subsets ids

  let explore ?(max_depth = 200) ?(max_configs = 2_000_000)
      ?(policy = Per_sender) ?(on_terminal = fun _ -> ()) ~n ~inputs ~pattern
      ~check () =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    if
      List.exists
        (fun p ->
          match Failure_pattern.crash_time pattern p with
          | Some t when t > 0 -> true
          | Some _ | None -> false)
        (Pid.universe n)
    then invalid_arg "Explorer: only initial crashes are supported";
    let seen = Hashtbl.create 65_536 in
    let visited = ref 0 in
    let terminals = ref 0 in
    let exhausted = ref false in
    let correct = Failure_pattern.correct pattern in
    let rec dfs config depth =
      let key = E.fingerprint config in
      if Hashtbl.mem seen key then ()
      else begin
        Hashtbl.add seen key ();
        incr visited;
        if !visited >= max_configs then exhausted := true;
        let decisions = E.decisions config in
        (match check decisions with
        | Some reason -> raise (Found (decisions, reason, depth))
        | None -> ());
        let done_ =
          List.for_all (fun p -> E.decision_of config p <> None) correct
        in
        if done_ then begin
          incr terminals;
          on_terminal decisions
        end
        else if depth >= max_depth || !visited >= max_configs then
          exhausted := true
        else
          let obs = E.observe ~pattern config in
          let steppers = Adversary.alive obs in
          List.iter
            (fun pid ->
              List.iter
                (fun deliver ->
                  match
                    E.apply ~pattern config (Adversary.Step { pid; deliver })
                  with
                  | Some config' -> dfs config' (depth + 1)
                  | None -> assert false)
                (choices policy obs pid))
            steppers
      end
    in
    match dfs (E.init ~n ~inputs) 0 with
    | () ->
        Safe
          {
            configs_visited = !visited;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
    | exception Found (decisions, reason, depth) ->
        Violation { decisions; reason; depth }

  (* ---- crash-adversarial exploration ---- *)

  type node = {
    config : E.config;
    crashed : Pid.t list; (* sorted *)
    key : string;
  }

  exception Unsafe of (Pid.t * Value.t * int) list * string

  let node_of config crashed =
    { config; crashed; key = E.fingerprint config ^ Marshal.to_string crashed [] }

  let explore_with_crashes ?(max_configs = 300_000) ?(policy = Per_sender)
      ?(drop_on_crash = true) ~n ~inputs ~crash_budget ~check () =
    if A.uses_fd then
      invalid_arg "Explorer: algorithms with failure detectors are unsupported";
    let pattern_of crashed = Failure_pattern.initial_dead ~n ~dead:crashed in
    let complete node =
      List.for_all
        (fun p ->
          List.mem p node.crashed || E.decision_of node.config p <> None)
        (Pid.universe n)
    in
    (* phase 1: enumerate the reachable node graph *)
    let info :
        (string, string list (* succs *) * bool (* complete *) * Pid.t list * Pid.t list)
        Hashtbl.t =
      Hashtbl.create 65_536
    in
    let exhausted = ref false in
    let terminals = ref 0 in
    let worklist = ref [] in
    let enumerate_one node =
      if Hashtbl.mem info node.key then ()
      else if Hashtbl.length info >= max_configs then exhausted := true
      else begin
        let decisions = E.decisions node.config in
        (match check decisions with
        | Some reason -> raise (Unsafe (decisions, reason))
        | None -> ());
        let is_complete = complete node in
        if is_complete then incr terminals;
        let pattern = pattern_of node.crashed in
        let succs = ref [] in
        if not is_complete then begin
          let obs = E.observe ~pattern node.config in
          let alive =
            List.filter (fun p -> not (List.mem p node.crashed)) (Pid.universe n)
          in
          (* scheduling/delivery successors *)
          List.iter
            (fun pid ->
              List.iter
                (fun deliver ->
                  match
                    E.apply ~pattern node.config (Adversary.Step { pid; deliver })
                  with
                  | Some config' -> succs := node_of config' node.crashed :: !succs
                  | None -> assert false)
                (choices policy obs pid))
            alive;
          (* crash successors *)
          if List.length node.crashed < crash_budget then
            List.iter
              (fun victim ->
                let crashed' = List.sort compare (victim :: node.crashed) in
                succs := node_of node.config crashed' :: !succs;
                if drop_on_crash then begin
                  let pending_from =
                    List.filter_map
                      (fun (m : Adversary.pending) ->
                        if m.src = victim then Some m.id else None)
                      obs.pending
                  in
                  if pending_from <> [] then
                    match
                      E.apply ~pattern:(pattern_of crashed') node.config
                        (Adversary.Drop pending_from)
                    with
                    | Some config' -> succs := node_of config' crashed' :: !succs
                    | None -> assert false
                end)
              alive
        end;
        let succ_nodes = !succs in
        Hashtbl.replace info node.key
          ( List.map (fun s -> s.key) succ_nodes,
            is_complete,
            node.crashed,
            List.filter
              (fun p ->
                (not (List.mem p node.crashed))
                && E.decision_of node.config p = None)
              (Pid.universe n) );
        worklist := List.rev_append succ_nodes !worklist
      end
    in
    let enumerate root =
      worklist := [ root ];
      let rec drain () =
        match !worklist with
        | [] -> ()
        | node :: rest ->
            worklist := rest;
            enumerate_one node;
            drain ()
      in
      drain ()
    in
    let root = node_of (E.init ~n ~inputs) [] in
    match enumerate root with
    | exception Unsafe (decisions, reason) -> Safety_violation { decisions; reason }
    | () ->
        let stats =
          {
            configs_visited = Hashtbl.length info;
            terminal_runs = !terminals;
            budget_exhausted = !exhausted;
          }
        in
        (* phase 2: backwards reachability from complete nodes *)
        let preds : (string, string list ref) Hashtbl.t =
          Hashtbl.create (Hashtbl.length info)
        in
        let completes = ref [] in
        Hashtbl.iter
          (fun key (succs, is_complete, _, _) ->
            if is_complete then completes := key :: !completes;
            List.iter
              (fun s ->
                match Hashtbl.find_opt preds s with
                | Some l -> l := key :: !l
                | None -> Hashtbl.add preds s (ref [ key ]))
              succs)
          info;
        let can_decide = Hashtbl.create (Hashtbl.length info) in
        let rec mark_all = function
          | [] -> ()
          | key :: rest ->
              if Hashtbl.mem can_decide key then mark_all rest
              else begin
                Hashtbl.add can_decide key ();
                let more =
                  match Hashtbl.find_opt preds key with
                  | Some l -> !l
                  | None -> []
                in
                mark_all (List.rev_append more rest)
              end
        in
        mark_all !completes;
        (* any enumerated node that cannot reach completion?  (only a
           sound verdict when enumeration was not truncated) *)
        let stuck =
          if !exhausted then None
          else
            Hashtbl.fold
              (fun key (_, _, crashed, undecided) acc ->
                match acc with
                | Some _ -> acc
                | None ->
                    if Hashtbl.mem can_decide key then None
                    else Some (crashed, undecided))
              info None
        in
        (match stuck with
        | Some (crashed, undecided_correct) ->
            Stuck { crashed; undecided_correct; stats }
        | None -> All_paths_decide stats)

  let reachable_decision_values ?(max_configs = 300_000) ?(policy = Per_sender)
      ~n ~inputs ~crash_budget () =
    let seen = ref [] in
    let note decisions =
      List.iter
        (fun (_, v, _) -> if not (List.mem v !seen) then seen := v :: !seen)
        decisions
    in
    (match
       explore_with_crashes ~max_configs ~policy ~n ~inputs ~crash_budget
         ~check:(fun decisions ->
           note decisions;
           None)
         ()
     with
    | All_paths_decide _ | Stuck _ -> ()
    | Safety_violation _ -> ());
    List.sort compare !seen
end
