(** In-flight messages.

    The paper models communication as one buffer per process holding
    messages sent but not yet received.  We tag every sent message
    with a globally unique id so that schedules ("deliver message m to
    p now") are plain data and runs can be replayed and spliced. *)

type 'payload t = {
  id : int;  (** Unique within a run, in sending order. *)
  src : Pid.t;
  dst : Pid.t;
  sent_at : int;  (** Step index of the sending step. *)
  payload : 'payload;
}

val pp :
  (Format.formatter -> 'payload -> unit) -> Format.formatter -> 'payload t -> unit
