module Int_map = Map.Make (Int)

module Make (A : Algorithm.S) = struct
  type config = {
    n : int;
    inputs : Value.t array;
    time : int;
    states : A.state Pid.Map.t;
    decided : (Value.t * int) Pid.Map.t;
    pending : A.message Envelope.t Int_map.t;
    next_id : int;
    events : Event.t list; (* reversed *)
  }

  exception Invalid_action of string
  exception Double_decision of Pid.t

  let init ~n ~inputs =
    if Array.length inputs <> n then invalid_arg "Engine.init: inputs length";
    let states =
      List.fold_left
        (fun acc p -> Pid.Map.add p (A.init ~n ~me:p ~input:inputs.(p)) acc)
        Pid.Map.empty (Pid.universe n)
    in
    {
      n;
      inputs = Array.copy inputs;
      time = 0;
      states;
      decided = Pid.Map.empty;
      pending = Int_map.empty;
      next_id = 0;
      events = [];
    }

  let time c = c.time
  let n c = c.n
  let state_of c p = Pid.Map.find p c.states
  let decision_of c p = Option.map fst (Pid.Map.find_opt p c.decided)

  let decisions c =
    Pid.Map.fold (fun p (v, t) acc -> (p, v, t) :: acc) c.decided []
    |> List.sort compare

  let pending c = List.map snd (Int_map.bindings c.pending)
  let events c = List.rev c.events

  let observe ~pattern c =
    {
      Adversary.time = c.time;
      n = c.n;
      pending =
        List.map
          (fun (e : A.message Envelope.t) ->
            { Adversary.id = e.id; src = e.src; dst = e.dst; sent_at = e.sent_at })
          (pending c);
      decided = List.map (fun (p, v, _) -> (p, v)) (decisions c);
      pattern;
      steps_taken =
        (fun p ->
          List.length
            (List.filter (fun (ev : Event.t) -> Pid.equal ev.pid p) c.events));
    }

  let check_deliverable c pid ids =
    List.map
      (fun id ->
        match Int_map.find_opt id c.pending with
        | None ->
            raise (Invalid_action (Printf.sprintf "message #%d not pending" id))
        | Some e ->
            if not (Pid.equal e.dst pid) then
              raise
                (Invalid_action
                   (Printf.sprintf "message #%d not addressed to p%d" id pid));
            e)
      (List.sort_uniq compare ids)

  let exec_step ?fd ~pattern c pid ids =
    let next_time = c.time + 1 in
    if not (Pid.valid ~n:c.n pid) then
      raise (Invalid_action (Printf.sprintf "invalid pid p%d" pid));
    (match Failure_pattern.crash_time pattern pid with
    | Some ct when next_time > ct ->
        raise
          (Invalid_action
             (Printf.sprintf "p%d crashed at %d, cannot step at %d" pid ct
                next_time))
    | Some _ | None -> ());
    let envs = check_deliverable c pid ids in
    let received =
      List.map (fun (e : A.message Envelope.t) -> (e.src, e.payload)) envs
    in
    let fd_view =
      if A.uses_fd then
        match fd with
        | None ->
            raise (Invalid_action (A.name ^ " queries a failure detector but none was supplied"))
        | Some oracle -> Some (oracle ~time:next_time ~me:pid)
      else None
    in
    let state = Pid.Map.find pid c.states in
    let state', sends, dec = A.step state ~received ~fd:fd_view in
    let pending =
      List.fold_left
        (fun acc (e : A.message Envelope.t) -> Int_map.remove e.id acc)
        c.pending envs
    in
    let pending, next_id, sent_refs =
      List.fold_left
        (fun (pend, id, refs) (dst, payload) ->
          if not (Pid.valid ~n:c.n dst) then
            raise (Invalid_action (Printf.sprintf "send to invalid pid p%d" dst));
          let e =
            { Envelope.id; src = pid; dst; sent_at = next_time; payload }
          in
          (Int_map.add id e pend, id + 1, (id, dst) :: refs))
        (pending, c.next_id, [])
        sends
    in
    let decided =
      match dec with
      | None -> c.decided
      | Some v -> (
          match Pid.Map.find_opt pid c.decided with
          | None -> Pid.Map.add pid (v, next_time) c.decided
          | Some (v0, _) ->
              if Value.equal v v0 then c.decided else raise (Double_decision pid))
    in
    let event =
      {
        Event.time = next_time;
        pid;
        delivered =
          List.map (fun (e : A.message Envelope.t) -> (e.id, e.src)) envs;
        sent = List.rev sent_refs;
        decision =
          (match dec with
          | Some v when not (Pid.Map.mem pid c.decided) -> Some v
          | Some _ | None -> None);
        state_digest = Digest.string (Marshal.to_string state' []);
      }
    in
    {
      c with
      time = next_time;
      states = Pid.Map.add pid state' c.states;
      decided;
      pending;
      next_id;
      events = event :: c.events;
    }

  let exec_drop ~pattern c ids =
    if ids = [] then raise (Invalid_action "empty drop");
    let pending =
      List.fold_left
        (fun acc id ->
          match Int_map.find_opt id acc with
          | None ->
              raise (Invalid_action (Printf.sprintf "drop: message #%d not pending" id))
          | Some (e : A.message Envelope.t) ->
              if not (Failure_pattern.is_crashed pattern e.src ~time:c.time)
              then
                raise
                  (Invalid_action
                     (Printf.sprintf
                        "drop: sender p%d of message #%d has not crashed" e.src
                        id))
              else Int_map.remove id acc)
        c.pending ids
    in
    { c with pending }

  let apply ?fd ~pattern c = function
    | Adversary.Halt -> None
    | Adversary.Step { pid; deliver } -> Some (exec_step ?fd ~pattern c pid deliver)
    | Adversary.Drop ids -> Some (exec_drop ~pattern c ids)

  let finish c ~pattern status =
    {
      Run.status;
      n = c.n;
      inputs = Array.copy c.inputs;
      pattern;
      events = events c;
      decisions = decisions c;
    }

  let run_full ?(max_steps = 100_000) ?fd ~n ~inputs ~pattern
      (adv : Adversary.t) =
    let all_correct_decided c =
      List.for_all
        (fun p -> Pid.Map.mem p c.decided)
        (Failure_pattern.correct pattern)
    in
    let rec loop c steps_left =
      if steps_left <= 0 then (finish c ~pattern Run.Hit_step_budget, c)
      else
        match adv.Adversary.next (observe ~pattern c) with
        | Adversary.Halt ->
            let status =
              if all_correct_decided c then Run.All_correct_decided
              else Run.Halted_by_adversary
            in
            (finish c ~pattern status, c)
        | action -> (
            match apply ?fd ~pattern c action with
            | None -> assert false
            | Some c' ->
                let consumed =
                  match action with
                  | Adversary.Step _ -> 1
                  | Adversary.Drop _ | Adversary.Halt -> 0
                in
                loop c' (steps_left - consumed))
    in
    loop (init ~n ~inputs) max_steps

  let run ?max_steps ?fd ~n ~inputs ~pattern adv =
    fst (run_full ?max_steps ?fd ~n ~inputs ~pattern adv)

  let fingerprint c =
    let states = Pid.Map.bindings c.states in
    let decided = List.map (fun (p, (v, _)) -> (p, v)) (Pid.Map.bindings c.decided) in
    let msgs =
      List.sort compare
        (List.map
           (fun (e : A.message Envelope.t) -> (e.src, e.dst, e.payload))
           (pending c))
    in
    Marshal.to_string (states, decided, msgs) []
end
