(** The value a process obtains when querying a failure detector at
    the beginning of a step (the paper's 6th model dimension,
    Section II).

    Failure-detector {e semantics} (which histories are admissible for
    a failure pattern) live in the [ksa_fd] library; this module only
    fixes the shape of a single query result so that algorithms can be
    written against it without depending on any concrete detector. *)

type t =
  | Quorum of Pid.t list
      (** A Σ-style trusted set (Definition 4's output). *)
  | Leaders of Pid.t list
      (** An Ω{_k}-style set of k leader candidates (Definition 5). *)
  | Lonely of bool
      (** A loneliness-style boolean oracle. *)
  | Pair of t * t
      (** Product detector, e.g. (Σ{_k}, Ω{_k}). *)

val quorum : t -> Pid.t list option
(** The Σ component, searching through [Pair] nesting (leftmost
    match). *)

val leaders : t -> Pid.t list option
(** The Ω component, searching through [Pair] nesting. *)

val lonely : t -> bool option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type oracle = time:int -> me:Pid.t -> t
(** A full history H: what process [me] sees when querying at step
    index [time].  The paper's H(p, t). *)
