(** Proposal and decision values.

    The paper draws values from a finite set V with |V| > n so that
    every process can start with a distinct proposal (footnote 1).
    Integers serve; the canonical "all distinct" assignment gives
    process [i] the value [i]. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val distinct_inputs : int -> t array
(** [distinct_inputs n] assigns value [i] to process [i]: the
    worst-case input of the impossibility arguments. *)

val constant_inputs : int -> t -> t array

val count_distinct : t list -> int
