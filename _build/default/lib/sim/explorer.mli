(** Bounded exhaustive exploration of the schedule space (a small
    model checker).

    For small systems this enumerates {e every} run prefix an
    asynchronous adversary can produce — every interleaving of process
    steps and every admissible delivery choice — and checks a safety
    predicate on the decision set of every reachable configuration.
    Possibility claims (e.g. "the Section VI protocol never produces
    more than k distinct decisions when kn > (k+1)f") are validated
    against this space rather than against sampled schedules.

    Soundness of the state-space deduplication requires future
    behaviour to be determined by the semantic configuration alone, so
    exploration is restricted to failure-detector-free algorithms and
    failure patterns whose crashes are all initial ([explore] raises
    [Invalid_argument] otherwise). *)

type delivery_policy =
  | Empty_or_all
      (** At each step a process receives nothing or its whole
          buffer.  Coarsest; misses reorderings within a buffer. *)
  | Per_sender
      (** Nothing, the whole buffer, or exactly the messages of one
          sender.  Captures the distinctions FLP-style protocols can
          make; default. *)
  | All_subsets
      (** Every subset of the buffer (exponential; tiny runs only). *)

type stats = {
  configs_visited : int;
  terminal_runs : int;  (** Deduplicated configs where every correct process has decided. *)
  budget_exhausted : bool;
      (** True if [max_configs] or [max_depth] pruned the search — the
          verdict then covers only the explored portion. *)
}

type outcome =
  | Safe of stats  (** No reachable explored configuration violates the check. *)
  | Violation of { decisions : (Pid.t * Value.t * int) list; reason : string; depth : int }

type resilient_outcome =
  | All_paths_decide of stats
      (** From every reachable configuration, a decision-complete
          configuration remains reachable — the algorithm cannot be
          trapped. *)
  | Safety_violation of {
      decisions : (Pid.t * Value.t * int) list;
      reason : string;
    }
  | Stuck of {
      crashed : Pid.t list;
      undecided_correct : Pid.t list;
      stats : stats;
    }
      (** A reachable configuration from which {e no} continuation
          reaches decision-completeness: the crash pattern listed has
          trapped the undecided correct processes — an FLP-style
          non-termination witness.  (In the infinite-run view, every
          fair extension of this configuration violates
          Termination.) *)

module Make (A : Algorithm.S) : sig
  val explore :
    ?max_depth:int ->
    ?max_configs:int ->
    ?policy:delivery_policy ->
    ?on_terminal:((Pid.t * Value.t * int) list -> unit) ->
    n:int ->
    inputs:Value.t array ->
    pattern:Failure_pattern.t ->
    check:((Pid.t * Value.t * int) list -> string option) ->
    unit ->
    outcome
  (** DFS over all schedules.  [check decisions] returns
      [Some reason] to report a safety violation of the current
      decision set ((process, value, time) triples).  [on_terminal]
      fires once per deduplicated decision-complete configuration.
      Defaults: [max_depth] 200, [max_configs] 2_000_000, [policy]
      [Per_sender]. *)

  val explore_with_crashes :
    ?max_configs:int ->
    ?policy:delivery_policy ->
    ?drop_on_crash:bool ->
    n:int ->
    inputs:Value.t array ->
    crash_budget:int ->
    check:((Pid.t * Value.t * int) list -> string option) ->
    unit ->
    resilient_outcome
  (** Exhaustive exploration where, in addition to scheduling and
      delivery choices, the adversary may crash up to [crash_budget]
      processes at {e any} point (a crashed process takes no further
      steps; with [drop_on_crash], for each crash both the
      keep-messages and the drop-all-its-pending-messages variants are
      explored — the last-step-omission allowance).  Classifies the
      whole reachable space: either every configuration can still
      reach decision-completeness, or a {e stuck} configuration is
      reported — the exhaustive form of the FLP/[11] facts behind
      condition (C), and of the Theorem 2 vs Theorem 8 gap (one
      non-initial crash defeats protocols that tolerate initial
      crashes).  State-space deduplication includes the crashed set,
      so the search is sound for crash-anytime patterns (algorithms
      with failure detectors remain unsupported). *)

  val reachable_decision_values :
    ?max_configs:int ->
    ?policy:delivery_policy ->
    n:int ->
    inputs:Value.t array ->
    crash_budget:int ->
    unit ->
    Value.t list
  (** The set of values decided in some reachable configuration under
      the crash-adversarial exploration: the {e valency} of the
      initial configuration.  Two or more values = bivalent/
      multivalent in FLP's sense. *)
end
