type process_sync = Async_processes | Sync_processes of int
type comm_sync = Async_comm | Sync_comm of int
type order = Unordered | Fifo
type transmission = Unicast | Broadcast
type atomicity = Separate | Atomic_receive_send
type fd_dim = No_fd | With_fd

type t = {
  processes : process_sync;
  communication : comm_sync;
  order : order;
  transmission : transmission;
  atomicity : atomicity;
  fd : fd_dim;
}

let masync =
  {
    processes = Async_processes;
    communication = Async_comm;
    order = Unordered;
    transmission = Broadcast;
    atomicity = Atomic_receive_send;
    fd = No_fd;
  }

let theorem2 ~n =
  {
    processes = Sync_processes n;
    communication = Async_comm;
    order = Unordered;
    transmission = Broadcast;
    atomicity = Atomic_receive_send;
    fd = No_fd;
  }

let strongest ~n ~delta =
  {
    processes = Sync_processes n;
    communication = Sync_comm delta;
    order = Fifo;
    transmission = Broadcast;
    atomicity = Atomic_receive_send;
    fd = No_fd;
  }

let with_fd t = { t with fd = With_fd }

let consensus_impossible t ~f =
  if f < 1 then Some false
  else
    match (t.communication, t.processes) with
    | Async_comm, _ ->
        (* [11, Table I] / FLP: asynchronous communication dooms
           consensus with one crash, whatever the other parameters *)
        Some true
    | Sync_comm _, Sync_processes _ ->
        (* fully synchronous: round-based consensus exists *)
        Some false
    | Sync_comm _, Async_processes ->
        (* depends on the remaining parameters in [11]; not encoded *)
        None

let pp_process ppf = function
  | Async_processes -> Format.pp_print_string ppf "procs:async"
  | Sync_processes phi -> Format.fprintf ppf "procs:sync(Φ=%d)" phi

let pp_comm ppf = function
  | Async_comm -> Format.pp_print_string ppf "comm:async"
  | Sync_comm d -> Format.fprintf ppf "comm:sync(Δ=%d)" d

let pp ppf t =
  Format.fprintf ppf "⟨%a %a %s %s %s %s⟩" pp_process t.processes pp_comm
    t.communication
    (match t.order with Unordered -> "unordered" | Fifo -> "fifo")
    (match t.transmission with Unicast -> "unicast" | Broadcast -> "broadcast")
    (match t.atomicity with
    | Separate -> "separate"
    | Atomic_receive_send -> "atomic")
    (match t.fd with No_fd -> "no-fd" | With_fd -> "fd")
