lib/sim/adversary.mli: Failure_pattern Ksa_prim Pid Value
