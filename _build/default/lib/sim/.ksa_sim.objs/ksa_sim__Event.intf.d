lib/sim/event.mli: Format Pid Value
