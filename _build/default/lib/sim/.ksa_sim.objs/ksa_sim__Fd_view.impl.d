lib/sim/fd_view.ml: Format Pid
