lib/sim/envelope.ml: Format Pid
