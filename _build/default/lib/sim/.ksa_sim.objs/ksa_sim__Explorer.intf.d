lib/sim/explorer.mli: Algorithm Failure_pattern Pid Value
