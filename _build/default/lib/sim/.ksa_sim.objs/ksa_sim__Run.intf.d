lib/sim/run.mli: Event Failure_pattern Format Pid Value
