lib/sim/replay.mli: Adversary Pid Run
