lib/sim/pid.mli: Format Map Set
