lib/sim/value.mli: Format
