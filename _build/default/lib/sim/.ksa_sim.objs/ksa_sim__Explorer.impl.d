lib/sim/explorer.ml: Adversary Algorithm Engine Failure_pattern Hashtbl List Marshal Pid Value
