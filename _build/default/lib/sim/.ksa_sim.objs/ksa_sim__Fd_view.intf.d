lib/sim/fd_view.mli: Format Pid
