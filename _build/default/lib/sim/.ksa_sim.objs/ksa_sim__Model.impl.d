lib/sim/model.ml: Format
