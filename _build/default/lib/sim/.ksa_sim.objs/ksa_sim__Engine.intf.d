lib/sim/engine.mli: Adversary Algorithm Envelope Event Failure_pattern Fd_view Pid Run Value
