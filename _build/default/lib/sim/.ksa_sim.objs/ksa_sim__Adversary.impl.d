lib/sim/adversary.ml: Array Failure_pattern Ksa_prim List Option Pid Printf Value
