lib/sim/run.ml: Event Failure_pattern Format List Option Pid Value
