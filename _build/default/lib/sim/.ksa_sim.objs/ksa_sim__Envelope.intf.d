lib/sim/envelope.mli: Format Pid
