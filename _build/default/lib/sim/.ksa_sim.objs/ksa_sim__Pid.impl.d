lib/sim/pid.ml: Format Fun Int List Map Set
