lib/sim/engine.ml: Adversary Algorithm Array Digest Envelope Event Failure_pattern Int List Map Marshal Option Pid Printf Run Value
