lib/sim/trace_io.mli: Format Replay Run
