lib/sim/failure_pattern.ml: Array Format List Pid
