lib/sim/model_check.ml: Array Event Failure_pattern Hashtbl Ksa_prim List Model Option Pid Printf Run
