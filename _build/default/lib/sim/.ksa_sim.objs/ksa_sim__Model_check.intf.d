lib/sim/model_check.mli: Model Run
