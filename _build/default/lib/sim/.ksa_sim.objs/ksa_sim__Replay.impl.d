lib/sim/replay.ml: Adversary Array Event Hashtbl List Option Pid Run
