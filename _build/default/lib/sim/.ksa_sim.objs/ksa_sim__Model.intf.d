lib/sim/model.mli: Format
