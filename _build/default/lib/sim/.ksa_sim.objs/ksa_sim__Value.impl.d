lib/sim/value.ml: Array Format Fun Int List
