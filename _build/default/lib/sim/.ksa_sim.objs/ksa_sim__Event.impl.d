lib/sim/event.ml: Format Pid Value
