lib/sim/trace_io.ml: Buffer Event Format Fun List Printf Replay Run String
