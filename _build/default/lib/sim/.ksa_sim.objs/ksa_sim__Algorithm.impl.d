lib/sim/algorithm.ml: Fd_view Format Pid Value
