(** Deciding admissibility of a concrete run in a DDS model instance.

    A {!Model.t} is a predicate on runs; this module evaluates it on
    the finite prefixes produced by the engine.  The checks are the
    standard ones:

    - synchronous processes: every Φ-window of steps contains a step
      of every process able to step throughout the window;
    - synchronous communication: every message is delivered within Δ
      steps (or its receiver crashed, or the run ended first for
      messages sent near the end);
    - FIFO: per channel, the delivery sequence is exactly a prefix of
      the send sequence;
    - unicast/broadcast and receive/send atomicity: per-step shape of
      the event's [sent]/[delivered] lists.

    The failure-detector dimension is enforced by the engine itself
    (an algorithm with [uses_fd] requires an oracle) and is not
    re-checked here. *)

val violations : Model.t -> Run.t -> string list
(** All violations found, human-readable; empty iff admissible. *)

val check : Model.t -> Run.t -> (unit, string) result
(** [Ok ()] iff the run is admissible in the model; otherwise the
    first violation. *)

val admissible_models : Run.t -> phi:int -> delta:int -> Model.t list
(** Of the 32 parameter combinations (with the given Φ and Δ for the
    synchronous choices, fd fixed to [No_fd]), those admitting the
    run — the run's position in the DDS cube. *)
