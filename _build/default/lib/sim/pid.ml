type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf p = Format.fprintf ppf "p%d" p
let universe n = List.init n Fun.id
let valid ~n p = p >= 0 && p < n

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list = Set.of_list
