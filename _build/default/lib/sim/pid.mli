(** Process identifiers.

    The paper's system is Π = \{p{_1}, …, p{_n}\} with unique ids
    1 … n; we use 0-based ids [0 … n-1] throughout and render them as
    [p0 … p(n-1)].  A pid is meaningful only relative to a system
    size [n]; functions that need the universe take [n] explicitly. *)

type t = int
(** 0-based process id. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val universe : int -> t list
(** [universe n] is Π = [0; …; n-1]. *)

val valid : n:int -> t -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
