type 'payload t = {
  id : int;
  src : Pid.t;
  dst : Pid.t;
  sent_at : int;
  payload : 'payload;
}

let pp pp_payload ppf e =
  Format.fprintf ppf "#%d %a→%a@%d: %a" e.id Pid.pp e.src Pid.pp e.dst e.sent_at
    pp_payload e.payload
