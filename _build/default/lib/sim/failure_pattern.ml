type t = { size : int; crash : int option array }

let none ~n = { size = n; crash = Array.make n None }

let of_crash_times ~n assoc =
  let crash = Array.make n None in
  List.iter
    (fun (p, t) ->
      if not (Pid.valid ~n p) then invalid_arg "Failure_pattern: invalid pid";
      if t < 0 then invalid_arg "Failure_pattern: negative crash time";
      if crash.(p) <> None then invalid_arg "Failure_pattern: duplicate pid";
      crash.(p) <- Some t)
    assoc;
  { size = n; crash }

let initial_dead ~n ~dead = of_crash_times ~n (List.map (fun p -> (p, 0)) dead)

let n t = t.size

let crash_time t p =
  if not (Pid.valid ~n:t.size p) then invalid_arg "Failure_pattern.crash_time";
  t.crash.(p)

let is_faulty t p = crash_time t p <> None

let faulty t =
  List.filter (fun p -> is_faulty t p) (Pid.universe t.size)

let correct t =
  List.filter (fun p -> not (is_faulty t p)) (Pid.universe t.size)

let crashed_at t ~time =
  List.filter
    (fun p -> match t.crash.(p) with Some ct -> ct <= time | None -> false)
    (Pid.universe t.size)

let is_crashed t p ~time =
  match crash_time t p with Some ct -> ct <= time | None -> false

let f_count t = List.length (faulty t)

let restrict_to t inside =
  let crash =
    Array.mapi
      (fun p ct -> if List.mem p inside then ct else Some 0)
      t.crash
  in
  { size = t.size; crash }

let merge ~inside fa fb =
  if fa.size <> fb.size then invalid_arg "Failure_pattern.merge: size mismatch";
  let crash =
    Array.init fa.size (fun p ->
        if List.mem p inside then fa.crash.(p) else fb.crash.(p))
  in
  { size = fa.size; crash }

let equal a b = a.size = b.size && a.crash = b.crash

let pp ppf t =
  let pp_one ppf p =
    match t.crash.(p) with
    | None -> Format.fprintf ppf "%a:ok" Pid.pp p
    | Some ct -> Format.fprintf ppf "%a:†%d" Pid.pp p ct
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_one)
    (Pid.universe t.size)
