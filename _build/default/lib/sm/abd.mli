(** ABD register emulation: shared memory from message passing with
    majority quorums (Attiya–Bar-Noy–Dolev), the substrate behind the
    paper's citation [9] in the proof of Theorem 10, condition (C).

    Each process owns one single-writer multi-reader register,
    replicated at every process as a (timestamp, value) pair.  A write
    by the owner installs a higher timestamp at a majority; a read
    collects pairs from a majority, picks the highest timestamp, and
    {e writes it back} to a majority before returning — the write-back
    is what upgrades regularity to atomicity.  Any two majorities
    intersect, which is exactly the Σ = Σ{_1} intersection property;
    majority liveness (a correct majority) is Σ's liveness.  The
    emulation therefore tolerates any minority of crashes, at any
    time.

    Processes run a fixed script of operations and decide their input
    when done (the decision is bookkeeping so schedules terminate; the
    artifact of interest is the operation log, extracted from the
    final states and checked with {!Register.check_atomic}). *)

module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

type op_spec =
  | Write_input  (** Write your input value to your own register. *)
  | Write_value of Value.t
  | Read_of of Pid.t  (** Read the register owned by the given process. *)

module Make (S : sig
  val script : n:int -> me:Pid.t -> op_spec list

  val write_back : bool
  (** [true] for the full ABD protocol.  [false] yields the {e weak}
      (regular-but-not-atomic) variant whose reads skip the write-back
      phase: a deliberately broken ablation that exhibits new/old
      inversions under adversarial schedules — the checker's positive
      control, and a demonstration of why the write-back (the second
      quorum access, Σ again) is load-bearing. *)
end) : sig
  include Ksa_sim.Algorithm.S

  val completed_ops : state -> int
  (** Number of completed operations (length of the log). *)

  val ops_of :
    Ksa_sim.Run.t -> state_of:(Pid.t -> state) -> Register.op list
  (** The global operation history: each process's log, with
      own-step indices converted to global step times via the run's
      event trace.  Only completed operations appear. *)
end

val write_then_read_all : n:int -> me:Pid.t -> op_spec list
(** The canonical torture script: write your input, then read every
    register (your own included), then write a second version, then
    read everything again. *)
