lib/sm/abd.ml: Array Format Fun Ksa_sim List Register
