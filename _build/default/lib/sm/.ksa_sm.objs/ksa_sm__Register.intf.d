lib/sm/register.mli: Format Ksa_sim
