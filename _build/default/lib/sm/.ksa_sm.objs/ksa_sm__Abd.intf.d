lib/sm/abd.mli: Ksa_sim Register
