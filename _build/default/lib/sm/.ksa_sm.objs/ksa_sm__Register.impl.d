lib/sm/register.ml: Format Hashtbl Ksa_sim List Option
