(** Single-writer registers: operation histories and the atomicity
    checker.

    The proof of Theorem 10, condition (C), leans on the classic
    equivalence between asynchronous message passing with Σ and
    shared memory (the paper's reference [9]).  The [ksa_sm] library
    realizes the message-passing → shared-memory direction: {!Abd}
    emulates one single-writer multi-reader register per process over
    the [ksa_sim] substrate, and this module checks the emulation's
    output for {e atomicity} (linearizability of register histories).

    Histories use the timestamp formulation: every completed operation
    carries the register's timestamp it wrote or read, plus its
    real-time interval (global step times).  For a single-writer
    register whose writes carry strictly increasing timestamps,
    atomicity is equivalent to:

    - {b read validity}: a read's (timestamp, value) pair was actually
      written (or is the initial pair);
    - {b read monotonicity}: if read r₁ responds before read r₂ is
      invoked, then ts(r₁) ≤ ts(r₂) (no new/old inversion);
    - {b write visibility}: a read invoked after a write's response
      returns a timestamp ≥ the write's;
    - {b no reading from the future}: a read that responds before a
      write is invoked returns a timestamp < the write's. *)

module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

type kind = Write | Read

type op = {
  kind : kind;
  client : Pid.t;  (** The process performing the operation. *)
  owner : Pid.t;  (** Whose register ([client = owner] for writes). *)
  ts : int;  (** Timestamp written / read; 0 is the initial value. *)
  value : Value.t;
  invoked : int;  (** Global step time of the invocation. *)
  responded : int;  (** Global step time of the response. *)
}

val pp_op : Format.formatter -> op -> unit

val check_atomic : op list -> (unit, string) result
(** The four conditions above, per register. *)

val check_write_once_timestamps : op list -> (unit, string) result
(** Sanity of the single-writer discipline: per register, writes have
    distinct, strictly increasing timestamps in real-time order and
    are performed by the owner. *)
