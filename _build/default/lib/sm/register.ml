module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

type kind = Write | Read

type op = {
  kind : kind;
  client : Pid.t;
  owner : Pid.t;
  ts : int;
  value : Value.t;
  invoked : int;
  responded : int;
}

let pp_op ppf o =
  Format.fprintf ppf "%s(%a→reg[%a], ts=%d, v=%a)@[%d,%d@]"
    (match o.kind with Write -> "write" | Read -> "read")
    Pid.pp o.client Pid.pp o.owner o.ts Value.pp o.value o.invoked o.responded

let by_register ops =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let l = Option.value ~default:[] (Hashtbl.find_opt tbl o.owner) in
      Hashtbl.replace tbl o.owner (o :: l))
    ops;
  Hashtbl.fold (fun owner l acc -> (owner, List.rev l) :: acc) tbl []

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let check_register (owner, ops) =
  let writes = List.filter (fun o -> o.kind = Write) ops in
  let reads = List.filter (fun o -> o.kind = Read) ops in
  (* read validity *)
  let valid_read r =
    r.ts = 0
    || List.exists (fun w -> w.ts = r.ts && Value.equal w.value r.value) writes
  in
  match List.find_opt (fun r -> not (valid_read r)) reads with
  | Some r -> err "reg[p%d]: read of never-written pair %a" owner pp_op r
  | None -> (
      (* read monotonicity *)
      let inversion =
        List.find_map
          (fun r1 ->
            List.find_map
              (fun r2 ->
                if r1.responded < r2.invoked && r1.ts > r2.ts then
                  Some (r1, r2)
                else None)
              reads)
          reads
      in
      match inversion with
      | Some (r1, r2) ->
          err "reg[p%d]: new/old inversion between %a and %a" owner pp_op r1
            pp_op r2
      | None -> (
          (* write visibility *)
          let missed =
            List.find_map
              (fun w ->
                List.find_map
                  (fun r ->
                    if w.responded < r.invoked && r.ts < w.ts then Some (w, r)
                    else None)
                  reads)
              writes
          in
          match missed with
          | Some (w, r) ->
              err "reg[p%d]: read %a misses completed write %a" owner pp_op r
                pp_op w
          | None -> (
              (* no reading from the future *)
              let future =
                List.find_map
                  (fun r ->
                    List.find_map
                      (fun w ->
                        if r.responded < w.invoked && r.ts >= w.ts then
                          Some (r, w)
                        else None)
                      writes)
                  reads
              in
              match future with
              | Some (r, w) ->
                  err "reg[p%d]: read %a returns the future write %a" owner
                    pp_op r pp_op w
              | None -> Ok ())))

let check_atomic ops =
  let rec go = function
    | [] -> Ok ()
    | reg :: rest -> (
        match check_register reg with Ok () -> go rest | Error _ as e -> e)
  in
  go (by_register ops)

let check_write_once_timestamps ops =
  let rec go = function
    | [] -> Ok ()
    | (owner, reg_ops) :: rest -> (
        let writes =
          List.sort
            (fun a b -> compare a.invoked b.invoked)
            (List.filter (fun o -> o.kind = Write) reg_ops)
        in
        let bad_owner = List.find_opt (fun w -> not (Pid.equal w.client owner)) writes in
        match bad_owner with
        | Some w -> err "reg[p%d]: non-owner write %a" owner pp_op w
        | None ->
            let rec increasing = function
              | a :: (b :: _ as rest) ->
                  if a.ts >= b.ts then
                    err "reg[p%d]: non-increasing write timestamps" owner
                  else increasing rest
              | [ _ ] | [] -> go rest
            in
            increasing writes)
  in
  go (by_register ops)
