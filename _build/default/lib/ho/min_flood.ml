module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

module Make (P : sig
  val rounds : int
end) =
struct
  type state = { me : Pid.t; est : Value.t }
  type message = Est of Value.t

  let name = Printf.sprintf "ho-min-flood(%d)" P.rounds

  let init ~n ~me ~input =
    ignore n;
    if P.rounds < 1 then invalid_arg "Min_flood: rounds >= 1";
    { me; est = input }

  let send st ~round:_ = Est st.est

  let transition st ~round ~received =
    let est =
      List.fold_left (fun acc (_, Est v) -> min acc v) st.est received
    in
    let st = { st with est } in
    if round = P.rounds then (st, Some est) else (st, None)

  let pp_state ppf st = Format.fprintf ppf "{%a est=%a}" Pid.pp st.me Value.pp st.est
  let pp_message ppf (Est v) = Format.fprintf ppf "est(%a)" Value.pp v
end
