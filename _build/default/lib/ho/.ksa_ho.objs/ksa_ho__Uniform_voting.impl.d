lib/ho/uniform_voting.ml: Format Ksa_sim List
