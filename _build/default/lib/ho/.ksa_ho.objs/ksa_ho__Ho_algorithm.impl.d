lib/ho/ho_algorithm.ml: Format Ksa_sim
