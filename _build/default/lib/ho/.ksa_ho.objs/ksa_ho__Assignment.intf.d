lib/ho/assignment.mli: Ksa_prim Ksa_sim
