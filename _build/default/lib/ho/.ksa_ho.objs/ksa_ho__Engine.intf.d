lib/ho/engine.mli: Assignment Ho_algorithm Ksa_sim
