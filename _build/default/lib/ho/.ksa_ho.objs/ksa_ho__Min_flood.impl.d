lib/ho/min_flood.ml: Format Ksa_sim List Printf
