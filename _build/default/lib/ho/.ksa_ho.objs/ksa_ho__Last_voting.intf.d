lib/ho/last_voting.mli: Ho_algorithm Ksa_sim
