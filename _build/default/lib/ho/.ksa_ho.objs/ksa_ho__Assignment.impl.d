lib/ho/assignment.ml: Array Hashtbl Ksa_prim Ksa_sim List
