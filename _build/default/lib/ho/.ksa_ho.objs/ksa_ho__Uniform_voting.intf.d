lib/ho/uniform_voting.mli: Ho_algorithm
