lib/ho/engine.ml: Array Assignment Digest Fun Ho_algorithm Ksa_sim List Marshal Option
