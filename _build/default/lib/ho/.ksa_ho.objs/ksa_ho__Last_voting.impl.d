lib/ho/last_voting.ml: Format Ksa_sim List
