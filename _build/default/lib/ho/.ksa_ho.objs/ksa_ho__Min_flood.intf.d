lib/ho/min_flood.mli: Ho_algorithm
