module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

module Make (A : Ho_algorithm.S) = struct
  type outcome = {
    n : int;
    inputs : Value.t array;
    rounds_run : int;
    decisions : (Pid.t * Value.t * int) list;
    digests : string array array;
  }

  exception Double_decision of Pid.t

  let digest state = Digest.string (Marshal.to_string state [])

  let run ~n ~inputs ~assignment ~rounds =
    if Array.length inputs <> n then invalid_arg "Ho.Engine.run: inputs length";
    let states =
      Array.init n (fun p -> A.init ~n ~me:p ~input:inputs.(p))
    in
    let decisions = Array.make n None in
    let digests =
      Array.init (rounds + 1) (fun _ -> Array.make n "")
    in
    Array.iteri (fun p st -> digests.(0).(p) <- digest st) states;
    for round = 1 to rounds do
      let messages = Array.map (fun st -> A.send st ~round) states in
      let new_states =
        Array.init n (fun p ->
            let received =
              List.map
                (fun q -> (q, messages.(q)))
                (assignment.Assignment.ho ~round ~me:p)
            in
            let st', dec = A.transition states.(p) ~round ~received in
            (match dec with
            | None -> ()
            | Some v -> (
                match decisions.(p) with
                | None -> decisions.(p) <- Some (v, round)
                | Some (v0, _) ->
                    if not (Value.equal v v0) then raise (Double_decision p)));
            st')
      in
      Array.blit new_states 0 states 0 n;
      Array.iteri (fun p st -> digests.(round).(p) <- digest st) states
    done;
    let decisions =
      List.filter_map
        (fun p ->
          Option.map (fun (v, r) -> (p, v, r)) decisions.(p))
        (Pid.universe n)
    in
    { n; inputs = Array.copy inputs; rounds_run = rounds; decisions; digests }

  let decided_values o =
    List.sort_uniq Value.compare (List.map (fun (_, v, _) -> v) o.decisions)

  let distinct_decisions o = List.length (decided_values o)

  let all_decided o = List.length o.decisions = o.n

  let decision_round o p =
    List.find_map
      (fun (q, _, r) -> if Pid.equal p q then Some r else None)
      o.decisions

  let states_equal_until_decision oa ob p =
    let limit r = function Some d -> min r d | None -> r in
    let ra = limit oa.rounds_run (decision_round oa p)
    and rb = limit ob.rounds_run (decision_round ob p) in
    let upto = min ra rb in
    (* if p decides in both, the deciding rounds must agree *)
    (match (decision_round oa p, decision_round ob p) with
    | Some da, Some db -> da = db
    | _ -> true)
    && List.for_all
         (fun r -> oa.digests.(r).(p) = ob.digests.(r).(p))
         (List.init (upto + 1) Fun.id)
end
