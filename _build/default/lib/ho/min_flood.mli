(** Min-flooding in the HO model.

    Every round, send your current estimate and adopt the minimum of
    what you hear; decide after a fixed number of rounds.  The HO
    analogue of the FloodSet family:

    - under the complete assignment it is one-round consensus on the
      global minimum;
    - under a crash-like assignment with at most f disappearances it
      reaches consensus within f+1 rounds (each round either nobody
      disappears — and estimates converge — or the disappearance
      budget shrinks);
    - under a partitioned assignment it decides one value per group —
      the round-model rendering of the paper's partitioning argument
      (Discussion, application to round models). *)

module Make (P : sig
  val rounds : int
  (** Decide at the end of this round (≥ 1). *)
end) : Ho_algorithm.S
