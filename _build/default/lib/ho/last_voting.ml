module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

let coordinator ~n ~phase = phase mod n

module A = struct
  type state = {
    n : int;
    me : Pid.t;
    x : Value.t;
    ts : int;  (* phase in which x was last adopted; 0 initially *)
    vote : Value.t option;  (* coordinator only *)
    ready : bool;  (* coordinator only *)
    decided : bool;
  }

  type message =
    | Estimate of Value.t * int  (** round 4φ−3: (x, ts) *)
    | Vote of Value.t option  (** round 4φ−2 *)
    | Ack of bool  (** round 4φ−1: true iff ts = current phase *)
    | Decide of Value.t option  (** round 4φ *)

  let name = "ho-last-voting"

  let init ~n ~me ~input =
    { n; me; x = input; ts = 0; vote = None; ready = false; decided = false }

  let phase_of ~round = ((round - 1) / 4) + 1
  let subround ~round = ((round - 1) mod 4) + 1

  let is_coord st ~round =
    Pid.equal st.me (coordinator ~n:st.n ~phase:(phase_of ~round))

  let send st ~round =
    match subround ~round with
    | 1 -> Estimate (st.x, st.ts)
    | 2 -> Vote (if is_coord st ~round then st.vote else None)
    | 3 -> Ack (st.ts = phase_of ~round)
    | _ ->
        Decide
          (if is_coord st ~round && st.ready then st.vote else None)

  let transition st ~round ~received =
    let phase = phase_of ~round in
    let coord = coordinator ~n:st.n ~phase in
    match subround ~round with
    | 1 ->
        (* coordinator gathers (x, ts) pairs from a majority *)
        if is_coord st ~round then begin
          let pairs =
            List.filter_map
              (fun (_, m) ->
                match m with Estimate (x, ts) -> Some (x, ts) | _ -> None)
              received
          in
          if 2 * List.length pairs > st.n then
            let best =
              List.fold_left
                (fun (bx, bts) (x, ts) ->
                  if ts > bts || (ts = bts && x < bx) then (x, ts) else (bx, bts))
                (List.hd pairs) (List.tl pairs)
            in
            ({ st with vote = Some (fst best) }, None)
          else ({ st with vote = None }, None)
        end
        else (st, None)
    | 2 -> (
        (* adopt the coordinator's vote if heard *)
        let coord_vote =
          List.find_map
            (fun (src, m) ->
              match m with
              | Vote (Some v) when Pid.equal src coord -> Some v
              | _ -> None)
            received
        in
        match coord_vote with
        | Some v -> ({ st with x = v; ts = phase }, None)
        | None -> (st, None))
    | 3 ->
        if is_coord st ~round then begin
          let acks =
            List.length
              (List.filter
                 (fun (_, m) -> match m with Ack true -> true | _ -> false)
                 received)
          in
          ({ st with ready = 2 * acks > st.n }, None)
        end
        else (st, None)
    | _ -> (
        (* decision round; coordinator state resets for the next phase *)
        let reset st = { st with vote = None; ready = false } in
        let decision =
          List.find_map
            (fun (src, m) ->
              match m with
              | Decide (Some v) when Pid.equal src coord -> Some v
              | _ -> None)
            received
        in
        match decision with
        | Some v when not st.decided ->
            ({ (reset st) with x = v; ts = phase; decided = true }, Some v)
        | Some _ | None -> (reset st, None))

  let pp_state ppf st =
    Format.fprintf ppf "{%a x=%a ts=%d%s}" Pid.pp st.me Value.pp st.x st.ts
      (if st.decided then " dec" else "")

  let pp_message ppf = function
    | Estimate (x, ts) -> Format.fprintf ppf "est(%a,%d)" Value.pp x ts
    | Vote v -> Format.fprintf ppf "vote(%a)" (Format.pp_print_option Value.pp) v
    | Ack b -> Format.fprintf ppf "ack(%b)" b
    | Decide v -> Format.fprintf ppf "dec(%a)" (Format.pp_print_option Value.pp) v
end
