(** UniformVoting: consensus in the HO model (after Charron-Bost &
    Schiper, the paper's reference [8]).

    Phases of two rounds.  In round 2φ−1 every process sends its
    estimate x; a process that hears only one distinct value v votes
    for v, otherwise it votes ?.  In round 2φ every process sends
    (vote, x); a process that hears a non-? vote adopts the smallest
    such value as its new x, and {e decides} it if every vote heard
    was that same non-? vote; a process that hears only ? votes adopts
    the smallest x heard.

    Safety requires only the {e no-split} predicate (any two HO sets
    of a round intersect): two non-? votes of one round are equal
    because both voters heard a common process's x, and a decision in
    round 2φ forces every process to adopt the decided value through
    the same intersection, so later votes and decisions cannot
    diverge.  Liveness follows from two consecutive uniform rounds
    (everyone hears the same set): the even round equalizes x, the
    next phase votes and decides.

    Under a {e partitioned} assignment (no-split violated across
    groups, satisfied within each group) every group runs its own
    correct consensus and decides its own value: the paper's
    partitioning argument transplanted to round models. *)

module A : Ho_algorithm.S
