module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

module A = struct
  type state = { me : Pid.t; x : Value.t; vote : Value.t option; decided : bool }

  type message =
    | X of Value.t  (** odd rounds *)
    | V of Value.t option * Value.t  (** even rounds: (vote, x) *)

  let name = "ho-uniform-voting"

  let init ~n ~me ~input =
    ignore n;
    { me; x = input; vote = None; decided = false }

  let send st ~round =
    if round mod 2 = 1 then X st.x else V (st.vote, st.x)

  let xs_of received =
    List.filter_map (fun (_, m) -> match m with X v -> Some v | V _ -> None) received

  let votes_of received =
    List.filter_map
      (fun (_, m) -> match m with V (vote, x) -> Some (vote, x) | X _ -> None)
      received

  let transition st ~round ~received =
    if round mod 2 = 1 then begin
      (* voting round: vote for v iff every estimate heard equals v *)
      let xs = List.sort_uniq Value.compare (xs_of received) in
      let vote = match xs with [ v ] -> Some v | [] | _ :: _ :: _ -> None in
      ({ st with vote }, None)
    end
    else begin
      let pairs = votes_of received in
      let non_bot =
        List.sort_uniq Value.compare
          (List.filter_map (fun (vote, _) -> vote) pairs)
      in
      let st =
        match non_bot with
        | v :: _ -> { st with x = v } (* smallest non-? vote *)
        | [] -> (
            match List.sort_uniq Value.compare (List.map snd pairs) with
            | v :: _ -> { st with x = v }
            | [] -> st)
      in
      let unanimous =
        pairs <> []
        && match non_bot with
           | [ v ] -> List.for_all (fun (vote, _) -> vote = Some v) pairs
           | [] | _ :: _ :: _ -> false
      in
      (* the output is write-once: a process decides at most once,
         even if unanimity recurs later with a different estimate
         (e.g. after a partition is released) *)
      if unanimous && not st.decided then
        ({ st with decided = true }, Some st.x)
      else (st, None)
    end

  let pp_state ppf st =
    Format.fprintf ppf "{%a x=%a vote=%a}" Pid.pp st.me Value.pp st.x
      (Format.pp_print_option Value.pp)
      st.vote

  let pp_message ppf = function
    | X v -> Format.fprintf ppf "x(%a)" Value.pp v
    | V (vote, x) ->
        Format.fprintf ppf "v(%a,%a)"
          (Format.pp_print_option Value.pp)
          vote Value.pp x
end
