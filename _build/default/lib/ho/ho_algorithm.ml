(** Algorithms for the Heard-Of model (Charron-Bost & Schiper, the
    paper's reference [8]).

    Computation proceeds in communication-closed rounds: in round r
    every process computes one message from its state and (logically)
    sends it to everyone; it then receives exactly the messages of the
    processes in its {e heard-of set} HO(p, r) and transitions.  There
    are no explicit failures — crashes, omissions and asynchrony are
    all absorbed into the HO sets, and system assumptions become
    {e communication predicates} over the HO assignment
    ({!Assignment}).

    The paper's Discussion conjectures that Theorem 1 applies to round
    models; the [ksa_ho] library substantiates it: a partitioned HO
    assignment (HO sets never crossing a group boundary until
    decision) plays exactly the role of the partition adversary, and
    drives the algorithms below to one decision value per group. *)

module type S = sig
  type state
  type message

  val name : string

  val init : n:int -> me:Ksa_sim.Pid.t -> input:Ksa_sim.Value.t -> state

  val send : state -> round:int -> message
  (** The round-r message; the HO model sends the same message to
      everyone (point-to-point variation is not needed by the
      algorithms here). *)

  val transition :
    state ->
    round:int ->
    received:(Ksa_sim.Pid.t * message) list ->
    state * Ksa_sim.Value.t option
  (** End-of-round transition with the messages of HO(p, r), in
      sender order.  [Some v] decides (write-once; the engine treats
      conflicting re-decision as an algorithm bug). *)

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
end
