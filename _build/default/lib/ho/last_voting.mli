(** LastVoting: Paxos in the HO model (Charron-Bost & Schiper).

    Phases of four rounds with a rotating coordinator
    c(φ) = φ mod n:

    - round 4φ−3: everyone sends (x, ts); if the coordinator hears
      more than n/2 pairs it picks the estimate with the highest
      timestamp as its {e vote};
    - round 4φ−2: the coordinator sends its vote; a process hearing it
      adopts it and timestamps it with φ;
    - round 4φ−1: processes with ts = φ send an ack; if the
      coordinator hears more than n/2 acks it becomes ready;
    - round 4φ: a ready coordinator sends its vote; any process
      hearing it decides.

    Safety is {e unconditional} — it holds for every HO assignment,
    including splits and partitions, by the classic Paxos argument:
    a decision requires a majority of processes locked on (v, φ), and
    any later coordinator's majority intersects that set, so the
    highest-timestamp rule re-selects v.  Liveness needs a phase in
    which the coordinator hears a majority and everyone hears the
    coordinator (e.g. any phase of complete rounds).

    The instructive contrast with {!Uniform_voting}: LastVoting's
    majorities are exactly Σ-style intersecting quorums, so a
    partitioned assignment does not produce k decisions — it produces
    {e none} in every group smaller than a majority.  This is the
    round-model shadow of the paper's Section VII moral: what must be
    added to Σ{_k} is the ability to reach consensus inside each
    partition; quorums that never span a majority block instead of
    splitting. *)

module A : Ho_algorithm.S

val coordinator : n:int -> phase:int -> Ksa_sim.Pid.t
(** The rotating coordinator (exposed for tests). *)
