lib/prim/listx.mli:
