lib/prim/listx.ml: List
