lib/prim/rng.mli:
