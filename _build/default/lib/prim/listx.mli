(** Small list utilities shared across the libraries. *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi-1] (empty if [hi <= lo]). *)

val take : int -> 'a list -> 'a list
(** First [k] elements (all of them if shorter). *)

val drop : int -> 'a list -> 'a list

val chunks : int -> 'a list -> 'a list list
(** [chunks k xs] splits [xs] into consecutive blocks of size [k];
    the last block may be shorter.  @raise Invalid_argument if
    [k <= 0]. *)

val distinct_count : 'a list -> int
(** Number of distinct elements (by structural comparison). *)

val disjoint : 'a list -> 'a list -> bool
(** Whether two lists share no element. *)

val subset : 'a list -> 'a list -> bool
(** [subset xs ys]: every element of [xs] occurs in [ys]. *)

val intersect : 'a list -> 'a list -> 'a list
(** Elements of the first list also present in the second, preserving
    first-list order, deduplicated. *)

val pairwise_disjoint : 'a list list -> bool

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val combinations : int -> 'a list -> 'a list list
(** All size-[k] sublists, in order.  [combinations 2 [1;2;3]] is
    [[1;2]; [1;3]; [2;3]].  Empty if [k] exceeds the length. *)

val min_by : ('a -> 'b) -> 'a list -> 'a
(** Element minimizing a key.  @raise Invalid_argument on empty. *)

val max_by : ('a -> 'b) -> 'a list -> 'a
