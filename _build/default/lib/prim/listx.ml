let range lo hi = List.init (max 0 (hi - lo)) (fun i -> lo + i)

let rec take k = function
  | [] -> []
  | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

let rec drop k = function
  | [] -> []
  | _ :: rest as xs -> if k <= 0 then xs else drop (k - 1) rest

let chunks k xs =
  if k <= 0 then invalid_arg "Listx.chunks";
  let rec go = function
    | [] -> []
    | xs -> take k xs :: go (drop k xs)
  in
  go xs

let distinct_count xs = List.length (List.sort_uniq compare xs)

let disjoint xs ys = not (List.exists (fun x -> List.mem x ys) xs)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let intersect xs ys =
  List.sort_uniq compare (List.filter (fun x -> List.mem x ys) xs)

let rec pairwise_disjoint = function
  | [] -> true
  | xs :: rest -> List.for_all (disjoint xs) rest && pairwise_disjoint rest

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let rec combinations k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations (k - 1) rest)
        @ combinations k rest

let min_by key = function
  | [] -> invalid_arg "Listx.min_by: empty list"
  | x :: rest ->
      List.fold_left (fun best y -> if key y < key best then y else best) x rest

let max_by key = function
  | [] -> invalid_arg "Listx.max_by: empty list"
  | x :: rest ->
      List.fold_left (fun best y -> if key y > key best then y else best) x rest
