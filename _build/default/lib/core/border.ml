let check_nf ~n ~f =
  if n < 1 || f < 0 || f >= n then invalid_arg "Border: need 0 <= f < n"

let theorem2_impossible ~n ~f ~k =
  check_nf ~n ~f;
  if k < 1 then invalid_arg "Border: k >= 1";
  (k * (n - f)) + 1 <= n

let max_impossible_k ~n ~f =
  check_nf ~n ~f;
  (n - 1) / (n - f)

let theorem8_solvable ~n ~f ~k =
  check_nf ~n ~f;
  if k < 1 then invalid_arg "Border: k >= 1";
  k * n > (k + 1) * f

let min_solvable_k ~n ~f =
  check_nf ~n ~f;
  (f / (n - f)) + 1

let theorem8_initial_impossible ~n ~f ~k =
  check_nf ~n ~f;
  if k < 1 then invalid_arg "Border: k >= 1";
  k * (n - f) <= f

let theorem2_covers_initial_crash_impossibility ~n ~f =
  check_nf ~n ~f;
  let ks = List.init n (fun i -> i + 1) in
  List.for_all
    (fun k ->
      (not (theorem8_initial_impossible ~n ~f ~k))
      || theorem2_impossible ~n ~f ~k)
    ks

let bouzid_travers_impossible ~n ~k = k > 1 && 2 * k * k <= n

let theorem10_impossible ~n ~k = 2 <= k && k <= n - 2

let corollary13_solvable ~n ~k =
  if k < 1 || k > n - 1 then invalid_arg "Border: need 1 <= k <= n-1";
  k = 1 || k = n - 1

let theorem10_strictly_extends_bouzid_travers ~n =
  List.exists
    (fun k -> theorem10_impossible ~n ~k && not (bouzid_travers_impossible ~n ~k))
    (List.init (max n 1) (fun i -> i + 1))

let flp_consensus_impossible ~n_subsystem ~crashes =
  n_subsystem >= 2 && crashes >= 1

let theorem2_partition_sizes ~n ~f ~k =
  if k < 1 then invalid_arg "Border: k >= 1";
  check_nf ~n ~f;
  if not (theorem2_impossible ~n ~f ~k) then None
  else
    let l = n - f in
    let sizes = List.init (k - 1) (fun _ -> l) in
    Some (sizes, n - ((k - 1) * l))
