lib/core/indist.mli: Ksa_sim
