lib/core/independence.ml: Ksa_prim Ksa_sim List Option
