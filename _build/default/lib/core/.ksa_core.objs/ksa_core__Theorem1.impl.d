lib/core/theorem1.ml: Array Border Format Indist Ksa_prim Ksa_sim List Option Partitioning
