lib/core/theorem2.ml: Independence Ksa_algo Ksa_sim List Partitioning Printf Stdlib Theorem1
