lib/core/border.mli:
