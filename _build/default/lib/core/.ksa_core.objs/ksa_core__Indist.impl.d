lib/core/indist.ml: Ksa_prim Ksa_sim List
