lib/core/experiments.mli: Format
