lib/core/border.ml: List
