lib/core/kset_spec.mli: Ksa_sim
