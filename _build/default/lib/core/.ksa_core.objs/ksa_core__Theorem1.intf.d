lib/core/theorem1.mli: Format Ksa_sim Partitioning
