lib/core/experiments.ml: Border Format Fun Independence Ksa_algo Ksa_dgraph Ksa_fd Ksa_ho Ksa_prim Ksa_sim Ksa_sm Kset_spec List Option Partitioning Pasting Printf String Theorem1 Theorem2
