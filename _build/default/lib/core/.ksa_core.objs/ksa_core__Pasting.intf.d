lib/core/pasting.mli: Ksa_fd Ksa_sim Stdlib
