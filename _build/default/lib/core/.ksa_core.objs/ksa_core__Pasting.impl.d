lib/core/pasting.ml: Array Format Indist Ksa_fd Ksa_prim Ksa_sim List Option Stdlib
