lib/core/kset_spec.ml: Array Hashtbl Ksa_sim List Option Printf
