lib/core/partitioning.ml: Border Format Ksa_prim Ksa_sim List
