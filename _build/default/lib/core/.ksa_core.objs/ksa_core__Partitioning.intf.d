lib/core/partitioning.mli: Format Ksa_sim
