lib/core/theorem2.mli: Ksa_sim Partitioning Stdlib Theorem1
