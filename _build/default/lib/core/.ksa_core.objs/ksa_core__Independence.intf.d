lib/core/independence.mli: Ksa_sim
