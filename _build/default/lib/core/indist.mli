(** Indistinguishability of runs (Definitions 2 and 3).

    Two runs are indistinguishable {e until decision} for a process p
    if p goes through the same sequence of local states in both until
    it decides.  We compare the MD5 digests of the marshalled states
    recorded in each event ({!Ksa_sim.Event.t.state_digest}); for the
    deterministic pure state machines of {!Ksa_sim.Algorithm.S} equal
    digest sequences mean equal state sequences (up to the
    astronomically unlikely hash collision). *)

module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid

val state_trace_until_decision : Run.t -> Pid.t -> string list
(** Digest sequence of the process's states up to and including its
    deciding step (the whole trace if it never decides). *)

val for_process : Run.t -> Run.t -> Pid.t -> bool
(** α ∼ β for p: equal traces until decision.  If p decides in both
    runs, only the prefixes up to the decision are compared; if it
    decides in neither, the full recorded traces must agree up to the
    shorter one's length (finite-prefix approximation). *)

val for_all : Run.t -> Run.t -> Pid.t list -> bool
(** α {^D}∼ β (Definition 2): indistinguishable for every process of
    D. *)

val compatible : Run.t list -> Run.t list -> d:Pid.t list -> bool
(** R' ≼{_D} R (Definition 3): every run of R' has a D-indistinguishable
    counterpart in R. *)
