module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value
module Fd_view = Ksa_sim.Fd_view
module Failure_pattern = Ksa_sim.Failure_pattern
module Adversary = Ksa_sim.Adversary
module Replay = Ksa_sim.Replay
module History = Ksa_fd.History
module Partition_fd = Ksa_fd.Partition_fd
module Rng = Ksa_prim.Rng

type solo = { group : Pid.t list; run : Run.t; history : History.t option }

type result = {
  solos : solo list;
  pasted : Run.t;
  pasted_history : History.t option;
  per_group_indistinguishable : bool list;
  distinct_decisions : int;
  definition7 : (unit, string) Stdlib.result option;
  lemma9 : (unit, string) Stdlib.result option;
}

let check_groups groups =
  let all = List.concat groups in
  let n = List.length all in
  if List.sort_uniq compare all <> Pid.universe n then
    invalid_arg "Pasting: groups must partition the process set";
  n

let default_leaders groups =
  List.map (fun g -> List.fold_left min (List.hd g) g) groups

(* Block-contiguous pasting of per-group source runs: group i's steps
   occupy the pasted times (B_i, B_i + T_i], so a query at pasted time
   B_i + j reads the source history at its own time j — the
   per-process time reparametrization that makes Lemma 11's history
   surgery operational. *)
let build_pasted_history ~n ~per_pid ~tgst_common ~leaders ~horizon =
  History.make ~n ~horizon (fun ~time ~me ->
      match per_pid.(me) with
      | None -> assert false
      | Some (h, off, len) -> (
          let solo_time = max 1 (min (time - off) len) in
          let solo_view = (h : History.t).History.view ~time:solo_time ~me in
          if time >= tgst_common then
            match Fd_view.quorum solo_view with
            | Some q -> Fd_view.Pair (Fd_view.Quorum q, Fd_view.Leaders leaders)
            | None -> Fd_view.Leaders leaders
          else solo_view))

(* offsets B_i from stream lengths *)
let offsets_of lengths =
  List.rev
    (snd
       (List.fold_left
          (fun (acc, outs) len -> (acc + len, acc :: outs))
          (0, []) lengths))

let paste_runs (type s m)
    (module A : Ksa_sim.Algorithm.S with type state = s and type message = m)
    ~n ~inputs ~sources =
  (* sources: (group, run, history option) list, pasted in order *)
  let module E = Ksa_sim.Engine.Make (A) in
  let lengths = List.map (fun (_, run, _) -> Run.step_count run) sources in
  let offsets = offsets_of lengths in
  let total = List.fold_left ( + ) 0 lengths in
  let tgst_common = total + 1 in
  let horizon = total + 2 in
  let groups = List.map (fun (g, _, _) -> g) sources in
  let leaders = default_leaders groups in
  let per_pid = Array.make n None in
  List.iteri
    (fun i (group, _, history) ->
      let off = List.nth offsets i and len = List.nth lengths i in
      List.iter
        (fun p ->
          per_pid.(p) <-
            Option.map (fun h -> (h, off, len)) history)
        group)
    sources;
  let uses_fd = A.uses_fd in
  let pasted_history =
    if uses_fd then
      Some (build_pasted_history ~n ~per_pid ~tgst_common ~leaders ~horizon)
    else None
  in
  let streams =
    List.map
      (fun (group, run, _) ->
        Replay.project ~keep:(fun p -> List.mem p group) run)
      sources
  in
  let pasted_pattern = Failure_pattern.none ~n in
  let pasted =
    E.run ~max_steps:(total + 16)
      ?fd:(Option.map History.oracle pasted_history)
      ~n ~inputs ~pattern:pasted_pattern
      (Replay.sequential streams)
  in
  (pasted, pasted_history, tgst_common, leaders)

let solo_of (type s m)
    (module A : Ksa_sim.Algorithm.S with type state = s and type message = m)
    ~n ~inputs ~groups ~stab ~tgst ~max_steps ~adversary group =
  let module E = Ksa_sim.Engine.Make (A) in
  let dead = List.filter (fun p -> not (List.mem p group)) (Pid.universe n) in
  let pattern = Failure_pattern.initial_dead ~n ~dead in
  let leaders = default_leaders groups in
  let history =
    if A.uses_fd then
      Some
        (Partition_fd.gen
           { Partition_fd.groups; leaders; tgst; stab }
           ~pattern ~horizon:(max stab tgst + 2))
    else None
  in
  let fd = Option.map History.oracle history in
  let run = E.run ~max_steps ?fd ~n ~inputs ~pattern (adversary ()) in
  { group; run; history }

let lemma12 ?inputs ?(stab = 1) ?(tgst = 1) ?(max_steps = 200_000)
    (module A : Ksa_sim.Algorithm.S) ~groups =
  let n = check_groups groups in
  let k = List.length groups in
  let inputs = Option.value inputs ~default:(Value.distinct_inputs n) in
  let solos =
    List.map
      (solo_of (module A) ~n ~inputs ~groups ~stab ~tgst ~max_steps
         ~adversary:Adversary.round_robin)
      groups
  in
  match
    List.find_opt (fun s -> s.run.Run.status <> Run.All_correct_decided) solos
  with
  | Some s ->
      Error
        (Format.asprintf
           "solo run of group {%a} did not reach decision-completeness (%a)"
           (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.pp)
           s.group Run.pp_summary s.run)
  | None ->
      let sources = List.map (fun s -> (s.group, s.run, s.history)) solos in
      let pasted, pasted_history, tgst_common, leaders =
        paste_runs (module A) ~n ~inputs ~sources
      in
      let per_group_indistinguishable =
        List.map (fun s -> Indist.for_all s.run pasted s.group) solos
      in
      let pasted_pattern = Failure_pattern.none ~n in
      let definition7 =
        Option.map
          (fun h ->
            Partition_fd.validate_partition_property
              { Partition_fd.groups; leaders; tgst = tgst_common; stab }
              ~pattern:pasted_pattern h)
          pasted_history
      in
      let lemma9 =
        Option.map
          (fun h -> Partition_fd.lemma9_check ~k ~pattern:pasted_pattern h)
          pasted_history
      in
      Ok
        {
          solos;
          pasted;
          pasted_history;
          per_group_indistinguishable;
          distinct_decisions = Run.distinct_decisions pasted;
          definition7;
          lemma9;
        }

type exchange = {
  beta : result;
  alpha : Run.t;
  beta' : Run.t;
  dbar_matches_alpha : bool;
  d_matches_beta : bool;
  all_decided : bool;
}

let lemma11 ?inputs ?(stab = 1) ?(tgst = 1) ?(max_steps = 200_000)
    ?(alpha_seed = 4711) (module A : Ksa_sim.Algorithm.S) ~groups =
  let n = check_groups groups in
  let inputs = Option.value inputs ~default:(Value.distinct_inputs n) in
  match lemma12 ~inputs ~stab ~tgst ~max_steps (module A) ~groups with
  | Error e -> Error e
  | Ok beta -> (
      (* α: a *different* run of the restricted system ⟨D̄⟩ — same
         confinement (everyone outside D̄ initially dead), but a fair
         schedule instead of round-robin *)
      let dbar = List.nth groups (List.length groups - 1) in
      let alpha_solo =
        solo_of (module A) ~n ~inputs ~groups ~stab ~tgst ~max_steps
          ~adversary:(fun () ->
            Adversary.fair ~rng:(Rng.create ~seed:alpha_seed))
          dbar
      in
      if alpha_solo.run.Run.status <> Run.All_correct_decided then
        Error "alpha run did not reach decision-completeness"
      else
        let d_solos =
          Ksa_prim.Listx.take (List.length groups - 1) beta.solos
        in
        let sources =
          List.map (fun s -> (s.group, s.run, s.history)) d_solos
          @ [ (dbar, alpha_solo.run, alpha_solo.history) ]
        in
        let beta', _, _, _ = paste_runs (module A) ~n ~inputs ~sources in
        let dbar_matches_alpha = Indist.for_all alpha_solo.run beta' dbar in
        let d_matches_beta =
          List.for_all
            (fun s -> Indist.for_all s.run beta' s.group)
            d_solos
        in
        match beta'.Run.status with
        | Run.All_correct_decided | Run.Halted_by_adversary ->
            Ok
              {
                beta;
                alpha = alpha_solo.run;
                beta';
                dbar_matches_alpha;
                d_matches_beta;
                all_decided = Run.all_correct_decided beta';
              }
        | Run.Hit_step_budget | Run.No_enabled_process ->
            Error "beta' replay did not complete")
