(** Partitions of the process set and the restriction of algorithms
    (Definition 1).

    Theorem 1 is parameterized by nonempty disjoint sets
    D{_1}, …, D{_(k−1)} and D̄ = Π ∖ ⋃D{_i}; Theorem 2 instantiates
    them as k−1 blocks of ℓ = n−f consecutive processes, leaving
    |D̄| ≥ n−f+1 (Lemma 3).  Theorem 8's border case uses k+1 blocks
    of n/(k+1).  This module builds those partitions and implements
    the restricted algorithm A|D. *)

module Pid = Ksa_sim.Pid

type t = {
  n : int;
  groups : Pid.t list list;  (** D{_1}, …, D{_(k−1)}: disjoint, nonempty. *)
  dbar : Pid.t list;  (** D̄ = Π ∖ ⋃ D{_i}. *)
}

val make : n:int -> groups:Pid.t list list -> t
(** Checks disjointness/nonemptiness/validity and computes D̄.
    @raise Invalid_argument on a malformed family. *)

val theorem2 : n:int -> f:int -> k:int -> t option
(** The Theorem 2 witness partition: D{_i} =
    \{p{_((i−1)ℓ)}, …, p{_(iℓ−1)}\} with ℓ = n−f, for 1 ≤ i < k;
    [None] if condition (1) fails.  Satisfies Lemma 3:
    |D̄| ≥ n−f+1. *)

val border_case : n:int -> k:int -> Pid.t list list option
(** Theorem 8's border-case partition: k+1 disjoint groups of
    n/(k+1) processes each, defined when (k+1) divides n (so that
    kn = (k+1)f with f = n − n/(k+1)). *)

val theorem10 : n:int -> k:int -> t option
(** Theorem 10's partition: D̄ = \{p{_0}, …, p{_(j−1)}\} with
    j = n−k+1 ≥ 3 and k−1 singleton groups; defined for
    2 ≤ k ≤ n−2. *)

val d_union : t -> Pid.t list
(** D = ⋃ D{_i}, sorted. *)

val all_groups : t -> Pid.t list list
(** D{_1}, …, D{_(k−1)}, D̄ — the full partitioning of Π (the shape
    Definition 7 consumes). *)

val pp : Format.formatter -> t -> unit

(** The restricted algorithm A|D (Definition 1): identical code, but
    the message sending function drops every message addressed
    outside D.  The restricted algorithm still believes the system
    has size n. *)
module Restrict (A : Ksa_sim.Algorithm.S) (D : sig
  val members : Pid.t list
end) : Ksa_sim.Algorithm.S
