module Run = Ksa_sim.Run
module Value = Ksa_sim.Value

let check_k_agreement ~k run =
  let d = Run.distinct_decisions run in
  if d <= k then Ok ()
  else Error (Printf.sprintf "k-agreement: %d distinct decisions > k = %d" d k)

let check_validity run =
  let proposed = Array.to_list run.Run.inputs in
  match
    List.find_opt (fun v -> not (List.mem v proposed)) (Run.decided_values run)
  with
  | None -> Ok ()
  | Some v -> Error (Printf.sprintf "validity: decided value %d was never proposed" v)

let check_termination run =
  if Run.all_correct_decided run then Ok ()
  else
    Error
      (Printf.sprintf "termination: a correct process never decided (status %s)"
         (match run.Run.status with
         | Run.All_correct_decided -> "decided"
         | Run.Halted_by_adversary -> "halted"
         | Run.Hit_step_budget -> "step-budget"
         | Run.No_enabled_process -> "no-enabled-process"))

let check ~k run =
  match check_validity run with
  | Error _ as e -> e
  | Ok () -> (
      match check_k_agreement ~k run with
      | Error _ as e -> e
      | Ok () -> check_termination run)

let check_many ~k runs =
  let rec go i = function
    | [] -> Ok ()
    | run :: rest -> (
        match check ~k run with
        | Ok () -> go (i + 1) rest
        | Error e -> Error (Printf.sprintf "run %d: %s" i e))
  in
  go 0 runs

let decision_profile runs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun run ->
      let d = Run.distinct_decisions run in
      Hashtbl.replace tbl d (Option.value ~default:0 (Hashtbl.find_opt tbl d) + 1))
    runs;
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])
