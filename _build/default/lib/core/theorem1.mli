(** Theorem 1, executable.

    The theorem: if a k-set agreement algorithm A for M admits runs
    satisfying (dec-D) — the k−1 groups D{_1} … D{_(k−1)} decide k−1
    distinct values proposed inside D while D̄ hears nothing from D
    until everyone in D̄ decided ((dec-D̄)) — and conditions (B)–(D)
    relate those runs to the restricted system M' = ⟨D̄⟩ in which
    consensus is unsolvable, then A does not solve k-set agreement.

    The paper's Remarks advertise the theorem as a cheap screening
    tool: "if (dec-D) can be satisfied in some runs, the algorithm is
    very likely flawed, as the remaining conditions are typically easy
    to construct in sufficiently asynchronous systems."  This module
    implements exactly that: {!screen} hunts for a (dec-D)∧(dec-D̄)
    witness with a portfolio of partition-shaped adversaries, and
    {!evaluate} additionally checks executable counterparts of
    conditions (B) and (D) on the collected runs and reports (C) from
    the border arithmetic. *)

module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid
module Value = Ksa_sim.Value

val dec_d : Run.t -> partition:Partitioning.t -> Value.t list option
(** (dec-D) witness: distinct values v{_1} … v{_(k−1)}, each proposed
    by a process of D and decided by a process of D{_i} — found by
    backtracking over a system of distinct representatives.  [None]
    if the run does not satisfy (dec-D). *)

val dec_dbar : Run.t -> partition:Partitioning.t -> bool
(** (dec-D̄): every process of D̄ decides, and receives no message
    from D until after the last D̄ decision. *)

type witness = {
  run : Run.t;
  values : Value.t list;  (** The distinct (dec-D) values. *)
  adversary : string;  (** Which portfolio strategy produced it. *)
}

type portfolio = {
  r_d : Run.t list;  (** Collected runs satisfying (dec-D). *)
  r_d_dbar : Run.t list;  (** … satisfying both (dec-D) and (dec-D̄). *)
  witness : witness option;  (** First run satisfying both. *)
  runs_tried : int;
}

val screen :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?inputs:Value.t array ->
  ?max_steps:int ->
  (module Ksa_sim.Algorithm.S) ->
  partition:Partitioning.t ->
  portfolio
(** Runs the adversary portfolio (sequential-solo in both group
    orders, partition-with-delays) on the given algorithm with
    distinct inputs by default, classifying every produced run. *)

type report = {
  portfolio : portfolio;
  condition_a : bool;  (** R(D) ≠ ∅ (some run satisfies (dec-D)). *)
  condition_b : bool;
      (** R(D) ≼{_D̄} R(D,D̄) over the collected runs (Definition 3
          via state-digest indistinguishability). *)
  condition_c : bool;
      (** Consensus unsolvable in M' = ⟨D̄⟩, from the border
          arithmetic given the subsystem crash budget. *)
  condition_d : bool;
      (** Validated by construction: the restricted algorithm A|D̄
          run in ⟨D̄⟩ is reproduced, state-for-state for D̄, by a
          full-system run in which Π∖D̄ is initially dead. *)
  verdict : [ `Not_a_kset_algorithm | `No_witness ];
      (** [`Not_a_kset_algorithm]: all four conditions hold, so by
          Theorem 1 the algorithm does not solve k-set agreement in
          any model admitting these runs. *)
}

val evaluate :
  ?fd:Ksa_sim.Fd_view.oracle ->
  ?pattern:Ksa_sim.Failure_pattern.t ->
  ?inputs:Value.t array ->
  ?max_steps:int ->
  ?seeds:int list ->
  subsystem_crash_budget:int ->
  (module Ksa_sim.Algorithm.S) ->
  partition:Partitioning.t ->
  report

val pp_report : Format.formatter -> report -> unit
