(** The solvability/impossibility borders, as arithmetic.

    Every quantitative claim of the paper reduces to an inequality in
    (n, f, k); this module is the single source of truth for them, and
    the experiment tables print them side by side with the behavioural
    evidence produced by the simulator. *)

val theorem2_impossible : n:int -> f:int -> k:int -> bool
(** Theorem 2: k-set agreement is impossible (even with synchronous
    processes, atomic broadcast, and only one non-initial crash) when
    k ≤ (n−1)/(n−f), i.e. [k * (n - f) + 1 <= n].
    Requires [0 <= f < n], [k >= 1]. *)

val max_impossible_k : n:int -> f:int -> int
(** The largest k for which Theorem 2 applies: ⌊(n−1)/(n−f)⌋. *)

val theorem8_solvable : n:int -> f:int -> k:int -> bool
(** Theorem 8: with up to f initially dead processes, k-set agreement
    is solvable iff [k * n > (k + 1) * f]. *)

val min_solvable_k : n:int -> f:int -> int
(** The smallest k solvable with f initial crashes:
    ⌊f/(n−f)⌋ + 1 (equals 1 when f < n/2, consensus regime). *)

val theorem8_initial_impossible : n:int -> f:int -> k:int -> bool
(** The complement of {!theorem8_solvable}: with f {e initial} crashes
    k-set agreement is impossible iff [k * (n - f) <= f] (the
    partitioning argument at the border kn = (k+1)f and below).

    Note the two failure models: Theorem 2 allows one crash {e during}
    the execution (plus f−1 initial), which buys strictly more
    impossibility — its region k(n−f) ≤ n−1 strictly contains this
    one (since f ≤ n−1).  Inside the gap
    f < k(n−f) ≤ n−1, k-set agreement is solvable with f initial
    crashes (Theorem 8) yet impossible if one of the f crashes may be
    non-initial (Theorem 2): the FLP phenomenon, generalized. *)

val theorem2_covers_initial_crash_impossibility : n:int -> f:int -> bool
(** Region inclusion (for property tests): every (k, f) impossible
    with initial crashes is also in Theorem 2's region. *)

val bouzid_travers_impossible : n:int -> k:int -> bool
(** The prior bound ([5], OPODIS'10): k-set agreement with (Σ{_k},Ω{_k})
    impossible when [1 < 2 * k * k <= n] — i.e. k > 1 and 2k² ≤ n. *)

val theorem10_impossible : n:int -> k:int -> bool
(** Theorem 10: with (Σ{_k}, Ω{_k}), impossible for all 2 ≤ k ≤ n−2. *)

val corollary13_solvable : n:int -> k:int -> bool
(** Corollary 13: with (Σ{_k}, Ω{_k}){_(1≤k≤n−1)}, k-set agreement is
    solvable iff k = 1 or k = n−1. *)

val theorem10_strictly_extends_bouzid_travers : n:int -> bool
(** For this n, some k is covered by Theorem 10 but not by [5]
    (always true for n ≥ 4; exposed for E6). *)

val flp_consensus_impossible : n_subsystem:int -> crashes:int -> bool
(** Condition (C) instances: consensus is impossible in an
    asynchronous subsystem of ≥ 2 processes where at least one crash
    may occur (FLP / the [11] Table I cases used in Theorems 2
    and 10). *)

val theorem2_partition_sizes : n:int -> f:int -> k:int -> (int list * int) option
(** When Theorem 2 applies, the partition witness sizes: k−1 groups of
    ℓ = n−f processes and |D̄| = n − (k−1)ℓ ≥ n−f+1 (Lemma 3);
    [None] when the bound does not apply. *)
