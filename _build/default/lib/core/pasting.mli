(** Executable run surgery: Lemma 12 (and the pasting core of
    Lemma 11).

    Lemma 12 builds, for a partitioning D{_1} … D{_k} of Π, a single
    admissible run α in which every group takes {e exactly} the steps
    it takes in a solo run α{_i} (everyone outside D{_i} initially
    dead), with all cross-group communication delayed until every
    correct process has decided, and a (Σ'{_k}, Ω'{_k}) history pasted
    from the solo histories with a common leader set imposed after a
    late t{_GST}.

    The construction here is literal: each solo run is recorded, its
    schedule replayed block-sequentially into one pasted run, and the
    pasted failure-detector history is defined so that group i's
    queries at pasted times B{_i}+j read the solo history at time j
    (the per-process time reparametrization that makes the paper's
    item 1 surgery type-check operationally).  The result record
    carries every check the lemma asserts:

    - each group is state-for-state indistinguishable (until decision)
      between its solo run and the pasted run;
    - the pasted run is decision-complete and exhibits k distinct
      decisions (one per group, by validity of the solo runs under
      distinct inputs);
    - the pasted history satisfies Definition 7, and — Lemma 9 — also
      validates as a (Σ{_k}, Ω{_k}) history.

    Restriction: solo runs must be failure-free within their group
    (exactly the Lemma 12 setting, where all failures are the initial
    deaths of the other groups). *)

module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid

type solo = {
  group : Pid.t list;
  run : Run.t;
  history : Ksa_fd.History.t option;
      (** The solo (Σ'{_k}, Ω'{_k}) history, when A uses an FD. *)
}

type result = {
  solos : solo list;
  pasted : Run.t;
  pasted_history : Ksa_fd.History.t option;
  per_group_indistinguishable : bool list;
      (** Lemma 11/12's core claim, one flag per group. *)
  distinct_decisions : int;
  definition7 : (unit, string) Stdlib.result option;
      (** Definition 7 validation of the pasted history. *)
  lemma9 : (unit, string) Stdlib.result option;
      (** The pasted history as a (Σ{_k}, Ω{_k}) history. *)
}

val lemma12 :
  ?inputs:Ksa_sim.Value.t array ->
  ?stab:int ->
  ?tgst:int ->
  ?max_steps:int ->
  (module Ksa_sim.Algorithm.S) ->
  groups:Pid.t list list ->
  (result, string) Stdlib.result
(** Runs the whole construction.  [groups] must partition Π (by
    convention the last group is D̄).  [Error] reports a solo run that
    failed to reach decision-completeness (the algorithm is then not
    \{D{_i}\}-independent and the construction does not apply). *)

type exchange = {
  beta : result;  (** The base Lemma-12 construction (the run β ∈ R). *)
  alpha : Run.t;  (** A different run of the D̄ subsystem (α ∈ R(D̄)). *)
  beta' : Run.t;  (** The exchanged run of Lemma 11. *)
  dbar_matches_alpha : bool;
      (** D̄ is state-identical (until decision) to α in β'. *)
  d_matches_beta : bool;
      (** Every D{_i} is state-identical to its β behaviour in β'. *)
  all_decided : bool;
}

val lemma11 :
  ?inputs:Ksa_sim.Value.t array ->
  ?stab:int ->
  ?tgst:int ->
  ?max_steps:int ->
  ?alpha_seed:int ->
  (module Ksa_sim.Algorithm.S) ->
  groups:Pid.t list list ->
  (exchange, string) Stdlib.result
(** The Lemma 11 exchange, executed: build β by {!lemma12}; produce a
    {e different} run α of the restricted system ⟨D̄⟩ (same solo
    confinement, but a fair schedule seeded by [alpha_seed], so D̄
    generally interleaves differently than in β); then construct β'
    by replaying α's schedule for the processes of D̄ and β's for the
    processes of D, under the correspondingly spliced
    failure-detector history.  The returned flags are the lemma's
    conclusion: β' is admissible, decision-complete, and
    indistinguishable from α for D̄ and from β for D. *)
