module Sim = Ksa_sim
module Run = Sim.Run
module Value = Sim.Value
module Adversary = Sim.Adversary
module Failure_pattern = Sim.Failure_pattern

type result = {
  partition : Partitioning.t;
  lemma3 : bool;
  lemma4 : bool;
  witness : Run.t option;
  witness_admissible : (unit, string) Stdlib.result;
  report : Theorem1.report;
  theorem_applies : bool;
}

let default_algo ~n ~f =
  let module K = Ksa_algo.Kset_flp.Make (struct
    let l = max 1 (n - f)
  end) in
  (module K : Sim.Algorithm.S)

let demonstrate ?algo ~n ~f ~k () =
  match Partitioning.theorem2 ~n ~f ~k with
  | None ->
      Error
        (Printf.sprintf
           "(n=%d, f=%d, k=%d) is outside Theorem 2's region: k(n-f)+1 > n" n f
           k)
  | Some partition ->
      let (module A : Sim.Algorithm.S) =
        match algo with Some a -> a | None -> default_algo ~n ~f
      in
      let module E = Sim.Engine.Make (A) in
      let l = n - f in
      let lemma3 =
        List.for_all
          (fun g -> List.length g = l)
          partition.Partitioning.groups
        && List.length partition.Partitioning.dbar >= l + 1
      in
      let all_groups = Partitioning.all_groups partition in
      let lemma4 =
        List.for_all
          (fun set ->
            (Independence.check_set (module A) ~n ~set).Independence.independent)
          all_groups
      in
      (* the synchronous-processes witness: round-robin scheduling with
         cross-group delays *)
      let inputs = Value.distinct_inputs n in
      let witness_run =
        E.run ~n ~inputs
          ~pattern:(Failure_pattern.none ~n)
          (Adversary.partition ~groups:all_groups ())
      in
      let is_witness =
        Theorem1.dec_d witness_run ~partition <> None
        && Theorem1.dec_dbar witness_run ~partition
      in
      let witness = if is_witness then Some witness_run else None in
      let witness_admissible =
        if is_witness then
          Sim.Model_check.check (Sim.Model.theorem2 ~n) witness_run
        else Error "no witness run"
      in
      let report =
        Theorem1.evaluate ~subsystem_crash_budget:1 (module A) ~partition
      in
      let theorem_applies =
        lemma3 && lemma4 && is_witness
        && witness_admissible = Ok ()
        && report.Theorem1.verdict = `Not_a_kset_algorithm
      in
      Ok
        {
          partition;
          lemma3;
          lemma4;
          witness;
          witness_admissible;
          report;
          theorem_applies;
        }
