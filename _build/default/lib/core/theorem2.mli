(** Theorem 2, executed step by step.

    The theorem: no algorithm solves k-set agreement for
    k ≤ (n−1)/(n−f) in a system with synchronous processes,
    asynchronous communication, one-step atomic broadcast and atomic
    receive+send — even when f−1 of the f faults are initial crashes
    and only one process can crash during the execution.

    {!demonstrate} replays the proof against a concrete algorithm
    (by default the paper's own protocol, pushed beyond its
    guarantee):

    - builds the witness partition D{_1}, …, D{_(k−1)} of ℓ = n−f
      processes each (checking Lemma 3's size facts);
    - checks Lemma 4 constructively:
      \{D{_1}, …, D{_(k−1)}, D̄\}-independence of the algorithm;
    - produces a (dec-D)∧(dec-D̄) witness run with the {e partition}
      adversary — whose round-robin scheduling keeps processes
      synchronous (Φ = n), so the run is admissible in the strong
      model, which is verified with {!Ksa_sim.Model_check};
    - evaluates conditions (A)–(D) of Theorem 1 (condition (C) from
      the encoded [11, Table I] fact that asynchronous communication
      plus one live crash makes consensus impossible in ⟨D̄⟩). *)

type result = {
  partition : Partitioning.t;
  lemma3 : bool;  (** |D{_i}| = n−f and |D̄| ≥ n−f+1. *)
  lemma4 : bool;  (** \{D{_1},…,D{_(k−1)},D̄\}-independence, exhibited. *)
  witness : Ksa_sim.Run.t option;
      (** The (dec-D)∧(dec-D̄) run produced by the partition
          adversary under round-robin (synchronous-processes)
          scheduling. *)
  witness_admissible : (unit, string) Stdlib.result;
      (** {!Ksa_sim.Model_check} verdict of the witness in
          {!Ksa_sim.Model.theorem2}. *)
  report : Theorem1.report;  (** Conditions (A)–(D). *)
  theorem_applies : bool;  (** Everything above holds. *)
}

val demonstrate :
  ?algo:(module Ksa_sim.Algorithm.S) ->
  n:int ->
  f:int ->
  k:int ->
  unit ->
  (result, string) Stdlib.result
(** [Error] when (n, f, k) is outside Theorem 2's region
    (k(n−f)+1 > n) — there is then nothing to demonstrate.  The
    default algorithm is the Section VI protocol with L = n−f. *)
