(** The k-set agreement task (Section II-A) as executable run
    predicates.

    - {b k-Agreement}: at most k different decision values — over
      {e all} processes, correct or faulty (the uniform flavour; for
      k = 1 this is uniform consensus).
    - {b Validity}: every decided value was proposed by some process.
    - {b Termination}: every correct process eventually decides —
      checked on finite prefixes as "the run reached a
      decision-complete state". *)

module Run = Ksa_sim.Run

val check_k_agreement : k:int -> Run.t -> (unit, string) result

val check_validity : Run.t -> (unit, string) result

val check_termination : Run.t -> (unit, string) result

val check : k:int -> Run.t -> (unit, string) result
(** All three properties; the first failure is reported. *)

val check_many : k:int -> Run.t list -> (unit, string) result
(** All runs; the first failing run is reported with its index. *)

val decision_profile : Run.t list -> (int * int) list
(** Histogram over runs of the number of distinct decisions:
    [(d, count)] sorted by [d].  Used by the experiment tables. *)
