module Run = Ksa_sim.Run
module Pid = Ksa_sim.Pid
module Event = Ksa_sim.Event

let state_trace_until_decision run p =
  let rec collect acc = function
    | [] -> List.rev acc
    | (ev : Event.t) :: rest ->
        if Pid.equal ev.pid p then
          let acc = ev.state_digest :: acc in
          match ev.decision with
          | Some _ -> List.rev acc
          | None -> collect acc rest
        else collect acc rest
  in
  collect [] run.Run.events

let decided_in run p = Run.decision_of run p <> None

let for_process ra rb p =
  let ta = state_trace_until_decision ra p
  and tb = state_trace_until_decision rb p in
  match (decided_in ra p, decided_in rb p) with
  | true, true -> ta = tb
  | true, false -> List.length tb >= List.length ta && Ksa_prim.Listx.take (List.length ta) tb = ta
  | false, true -> List.length ta >= List.length tb && Ksa_prim.Listx.take (List.length tb) ta = tb
  | false, false ->
      let k = min (List.length ta) (List.length tb) in
      Ksa_prim.Listx.take k ta = Ksa_prim.Listx.take k tb

let for_all ra rb ds = List.for_all (for_process ra rb) ds

let compatible r' r ~d =
  List.for_all (fun alpha -> List.exists (fun beta -> for_all alpha beta d) r) r'
