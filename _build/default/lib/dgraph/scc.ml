type result = { count : int; comp_of : int array }

(* Iterative Tarjan.  We simulate the recursion with an explicit stack
   of (vertex, next-successor-index) frames so that worst-case path
   graphs of tens of thousands of vertices do not overflow the OCaml
   stack. *)
let compute g =
  let size = Digraph.n g in
  let index = Array.make size (-1) in
  let lowlink = Array.make size 0 in
  let on_stack = Array.make size false in
  let comp_of = Array.make size (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let frame_vertex = Array.make (size + 1) 0 in
  let frame_succ = Array.make (size + 1) 0 in
  let succs = Array.init size (fun v -> Array.of_list (Digraph.succ g v)) in
  let start root =
    let top = ref 0 in
    let push v =
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      stack := v :: !stack;
      on_stack.(v) <- true;
      frame_vertex.(!top) <- v;
      frame_succ.(!top) <- 0;
      incr top
    in
    push root;
    while !top > 0 do
      let fi = !top - 1 in
      let v = frame_vertex.(fi) in
      let si = frame_succ.(fi) in
      let out = succs.(v) in
      if si < Array.length out then begin
        frame_succ.(fi) <- si + 1;
        let w = out.(si) in
        if index.(w) = -1 then push w
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
      end
      else begin
        (* post-visit of v *)
        decr top;
        if !top > 0 then begin
          let parent = frame_vertex.(!top - 1) in
          lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
        end;
        if lowlink.(v) = index.(v) then begin
          (* v is the root of a component: pop the Tarjan stack *)
          let rec pop () =
            match !stack with
            | [] -> assert false
            | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp_of.(w) <- !next_comp;
                if w <> v then pop ()
          in
          pop ();
          incr next_comp
        end
      end
    done
  in
  for v = 0 to size - 1 do
    if index.(v) = -1 then start v
  done;
  { count = !next_comp; comp_of }

let components g =
  let { count; comp_of } = compute g in
  let buckets = Array.make count [] in
  for v = Digraph.n g - 1 downto 0 do
    buckets.(comp_of.(v)) <- v :: buckets.(comp_of.(v))
  done;
  Array.to_list buckets

let same_component r u v = r.comp_of.(u) = r.comp_of.(v)
