(** Source components and the combinatorial lemmas of Section VI.

    Lemma 6: every finite directed simple graph in which each vertex
    has in-degree at least δ > 0 has a source component of size at
    least δ + 1.

    Lemma 7: within every weakly connected component there is at least
    one such source component.

    Consequences used by the protocol: a graph with minimum in-degree
    δ has at most ⌊n / (δ+1)⌋ source components, and if 2δ ≥ n the
    source component is unique. *)

val source_components : Digraph.t -> int list list
(** The source components (in-degree-0 components of the
    condensation), each as a sorted vertex list; the list of
    components is sorted by smallest member. *)

val source_component_count : Digraph.t -> int

val reachable_sources : Digraph.t -> int -> int list list
(** [reachable_sources g v] lists the source components from which
    [v] has a directed incoming path (including [v]'s own component if
    it is a source).  Lemma 7 guarantees this list is nonempty. *)

val decision_source : Digraph.t -> int -> int list
(** [decision_source g v] is the canonical source component assigned
    to [v] by the protocol's deterministic rule: among all source
    components reaching [v], the one containing the smallest vertex
    id.  This is the "initial clique" generalization: every process
    applies the same local rule, and the number of distinct results
    over all [v] is bounded by the number of source components. *)

val max_source_components : n:int -> delta:int -> int
(** The bound ⌊n / (δ+1)⌋ on the number of source components of a
    graph with [n] vertices and minimum in-degree [delta] ≥ 0
    (δ+1 is the minimum size of a source component per Lemma 6).
    @raise Invalid_argument if [delta < 0] or [n < 0]. *)

val lemma6_holds : Digraph.t -> bool
(** Checks Lemma 6 on a concrete graph: if δ = min in-degree > 0,
    some source component has ≥ δ + 1 vertices.  (Vacuously true when
    δ = 0.)  Intended for property-based testing. *)

val lemma7_holds : Digraph.t -> bool
(** Checks Lemma 7: every weakly connected component contains a
    source component of size ≥ δ + 1 where δ is the {e global}
    minimum in-degree (as in the paper's statement), provided
    δ > 0. *)

val unique_source_if_majority : Digraph.t -> bool
(** Checks the remark after Lemma 7: if 2δ ≥ n (with δ = minimum
    in-degree > 0) then there is exactly one source component. *)
