exception Invalid_vertex of int

type t = {
  size : int;
  succs : int array array; (* sorted, deduped, no self-loops *)
  preds : int array array; (* sorted, deduped, no self-loops *)
}

let n g = g.size

let check_vertex size v = if v < 0 || v >= size then raise (Invalid_vertex v)

let sort_dedup l =
  let sorted = List.sort_uniq compare l in
  Array.of_list sorted

let build size edge_list =
  let succ_l = Array.make size [] and pred_l = Array.make size [] in
  let add (u, v) =
    check_vertex size u;
    check_vertex size v;
    if u <> v then begin
      succ_l.(u) <- v :: succ_l.(u);
      pred_l.(v) <- u :: pred_l.(v)
    end
  in
  List.iter add edge_list;
  {
    size;
    succs = Array.map sort_dedup succ_l;
    preds = Array.map sort_dedup pred_l;
  }

let create ~n ~edges =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  build n edges

let empty size = create ~n:size ~edges:[]

let complete size =
  let edges = ref [] in
  for u = 0 to size - 1 do
    for v = 0 to size - 1 do
      if u <> v then edges := (u, v) :: !edges
    done
  done;
  create ~n:size ~edges:!edges

let of_pred_lists pred_lists =
  let size = Array.length pred_lists in
  let edges = ref [] in
  Array.iteri
    (fun v preds -> List.iter (fun u -> edges := (u, v) :: !edges) preds)
    pred_lists;
  build size !edges

let edge_count g = Array.fold_left (fun acc a -> acc + Array.length a) 0 g.succs

let mem_sorted arr x =
  (* binary search in a sorted array *)
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let y = arr.(mid) in
      if y = x then true else if y < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length arr)

let has_edge g u v =
  check_vertex g.size u;
  check_vertex g.size v;
  mem_sorted g.succs.(u) v

let succ g v =
  check_vertex g.size v;
  Array.to_list g.succs.(v)

let pred g v =
  check_vertex g.size v;
  Array.to_list g.preds.(v)

let out_degree g v =
  check_vertex g.size v;
  Array.length g.succs.(v)

let in_degree g v =
  check_vertex g.size v;
  Array.length g.preds.(v)

let min_in_degree g =
  if g.size = 0 then 0
  else Array.fold_left (fun acc a -> min acc (Array.length a)) max_int g.preds

let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    let out = g.succs.(u) in
    for i = Array.length out - 1 downto 0 do
      acc := (u, out.(i)) :: !acc
    done
  done;
  !acc

let transpose g = { g with succs = g.preds; preds = g.succs }

let add_edges g extra = build g.size (List.rev_append (edges g) extra)

let induced g vs =
  let vs = List.sort_uniq compare vs in
  List.iter (check_vertex g.size) vs;
  let back = Array.of_list vs in
  let fwd = Hashtbl.create (Array.length back) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) back;
  let keep = edges g in
  let sub_edges =
    List.filter_map
      (fun (u, v) ->
        match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
        | Some u', Some v' -> Some (u', v')
        | _, _ -> None)
      keep
  in
  (build (Array.length back) sub_edges, back)

let vertices g = List.init g.size Fun.id

let equal g1 g2 = g1.size = g2.size && edges g1 = edges g2

let pp ppf g =
  let pp_edge ppf (u, v) = Format.fprintf ppf "%d->%d" u v in
  Format.fprintf ppf "digraph(%d){%a}" g.size
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_edge)
    (edges g)
