(** The condensation DAG of a directed graph.

    Contracting every strongly connected component of [g] into a
    single vertex yields a directed acyclic graph.  Section VI of the
    paper calls a component whose contracted vertex has in-degree 0 a
    {e source component}; every process in the knowledge graph has a
    directed incoming path from all processes of at least one source
    component (Lemma 7), which is what makes local decision on a
    common clique value possible. *)

type t = {
  scc : Scc.result;  (** The underlying component structure. *)
  dag : Digraph.t;
      (** The condensation: one vertex per component, an edge
          [a → b] iff some original edge goes from component [a] to
          component [b] with [a <> b].  Acyclic by construction. *)
  members : int list array;
      (** [members.(c)] are the original vertices of component [c],
          sorted increasing. *)
}

val compute : Digraph.t -> t

val component_of : t -> int -> int
(** Component index of an original vertex. *)

val size_of : t -> int -> int
(** Number of original vertices in a component. *)

val sources : t -> int list
(** Indices of source components (in-degree 0 in the DAG), sorted. *)

val sinks : t -> int list
(** Indices of sink components (out-degree 0 in the DAG), sorted. *)

val is_acyclic : Digraph.t -> bool
(** [true] iff the graph has no directed cycle (every SCC is a
    singleton without a self-loop; self-loops are excluded by
    construction in {!Digraph}). *)

val topological_order : t -> int list
(** Component indices in a topological order of the DAG (every edge
    goes from an earlier to a later element). *)
