(** Weakly connected components (ignoring edge direction), via
    union-find.  Needed for Lemma 7, which quantifies over the weakly
    connected components of the knowledge graph. *)

val compute : Digraph.t -> int list list
(** The weakly connected components, each a sorted vertex list; the
    component list is sorted by smallest member.  Isolated vertices
    form singleton components. *)

val count : Digraph.t -> int

val same : Digraph.t -> int -> int -> bool
(** Whether two vertices lie in the same weakly connected component. *)
