type t = { scc : Scc.result; dag : Digraph.t; members : int list array }

let compute g =
  let scc = Scc.compute g in
  let count = scc.Scc.count in
  let members = Array.make count [] in
  for v = Digraph.n g - 1 downto 0 do
    let c = scc.Scc.comp_of.(v) in
    members.(c) <- v :: members.(c)
  done;
  let dag_edges =
    List.filter_map
      (fun (u, v) ->
        let cu = scc.Scc.comp_of.(u) and cv = scc.Scc.comp_of.(v) in
        if cu <> cv then Some (cu, cv) else None)
      (Digraph.edges g)
  in
  { scc; dag = Digraph.create ~n:count ~edges:dag_edges; members }

let component_of t v = t.scc.Scc.comp_of.(v)
let size_of t c = List.length t.members.(c)

let sources t =
  List.filter (fun c -> Digraph.in_degree t.dag c = 0) (Digraph.vertices t.dag)

let sinks t =
  List.filter (fun c -> Digraph.out_degree t.dag c = 0) (Digraph.vertices t.dag)

let is_acyclic g =
  let t = compute g in
  t.scc.Scc.count = Digraph.n g

(* Tarjan assigns component indices in reverse topological order:
   every DAG edge goes from a higher index to a lower one, so counting
   down is a topological order. *)
let topological_order t =
  List.init t.scc.Scc.count (fun i -> t.scc.Scc.count - 1 - i)
