module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx

let gnp rng ~n ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Rng.float rng < p then edges := (u, v) :: !edges
    done
  done;
  Digraph.create ~n ~edges:!edges

let min_in_degree rng ~n ~delta =
  if delta < 0 || delta >= n then invalid_arg "Gen.min_in_degree";
  let others v = List.filter (fun u -> u <> v) (Listx.range 0 n) in
  let preds = Array.init n (fun v -> Rng.sample rng delta (others v)) in
  Digraph.of_pred_lists preds

let knowledge_graph rng ~n ~alive ~wait_for =
  let alive = List.sort_uniq compare alive in
  if wait_for > List.length alive - 1 || wait_for < 0 then
    invalid_arg "Gen.knowledge_graph";
  let preds = Array.make n [] in
  List.iter
    (fun v ->
      let others = List.filter (fun u -> u <> v) alive in
      preds.(v) <- Rng.sample rng wait_for others)
    alive;
  Digraph.of_pred_lists preds

let cycle n =
  Digraph.create ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let union_of_cliques ~sizes =
  let total = List.fold_left ( + ) 0 sizes in
  let edges = ref [] in
  let base = ref 0 in
  List.iter
    (fun sz ->
      for u = !base to !base + sz - 1 do
        for v = !base to !base + sz - 1 do
          if u <> v then edges := (u, v) :: !edges
        done
      done;
      base := !base + sz)
    sizes;
  Digraph.create ~n:total ~edges:!edges
