lib/dgraph/weak_components.ml: Array Digraph Fun Hashtbl List Option
