lib/dgraph/source.ml: Array Condensation Digraph List Weak_components
