lib/dgraph/gen.mli: Digraph Ksa_prim
