lib/dgraph/condensation.mli: Digraph Scc
