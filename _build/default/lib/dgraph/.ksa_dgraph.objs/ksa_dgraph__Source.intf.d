lib/dgraph/source.mli: Digraph
