lib/dgraph/gen.ml: Array Digraph Ksa_prim List
