lib/dgraph/scc.ml: Array Digraph
