lib/dgraph/digraph.ml: Array Format Fun Hashtbl List
