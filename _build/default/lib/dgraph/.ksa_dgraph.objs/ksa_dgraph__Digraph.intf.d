lib/dgraph/digraph.mli: Format
