lib/dgraph/scc.mli: Digraph
