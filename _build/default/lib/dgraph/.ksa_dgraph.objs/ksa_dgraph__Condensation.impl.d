lib/dgraph/condensation.ml: Array Digraph List Scc
