lib/dgraph/weak_components.mli: Digraph
