(** Finite directed simple graphs on vertices [0 .. n-1].

    This is the combinatorial substrate of Section VI of the paper:
    the "who heard from whom" knowledge graph [G] built in the first
    stage of the FLP-style protocol is a digraph in which every vertex
    has in-degree at least [L - 1].  All graphs are simple: no
    parallel edges and no self-loops (a process does not receive its
    own stage-one message). *)

type t
(** Immutable directed simple graph. *)

exception Invalid_vertex of int
(** Raised when a vertex outside [0 .. n-1] is supplied. *)

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph on [n] vertices with the given
    directed edges [(u, v)] meaning {i u → v}.  Duplicate edges are
    deduplicated; self-loops are silently dropped (the graph is kept
    simple).  @raise Invalid_vertex on an out-of-range endpoint,
    @raise Invalid_argument if [n < 0]. *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] vertices. *)

val complete : int -> t
(** [complete n] has every edge [u → v] with [u <> v]. *)

val of_pred_lists : int list array -> t
(** [of_pred_lists preds] builds the graph in which vertex [v] has
    exactly the in-neighbours [preds.(v)] (deduplicated, self-loops
    dropped).  This is the natural constructor for FLP stage-one
    knowledge graphs: [preds.(v)] is the set of processes [v] heard
    from. *)

val n : t -> int
(** Number of vertices. *)

val edge_count : t -> int
(** Number of directed edges. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] is [true] iff {i u → v} is an edge. *)

val succ : t -> int -> int list
(** Out-neighbours, sorted increasing. *)

val pred : t -> int -> int list
(** In-neighbours, sorted increasing. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val min_in_degree : t -> int
(** Minimum in-degree over all vertices; [0] on the empty graph.
    This is the δ of Lemmas 6 and 7. *)

val edges : t -> (int * int) list
(** All edges, sorted lexicographically. *)

val transpose : t -> t
(** Graph with every edge reversed. *)

val add_edges : t -> (int * int) list -> t
(** Functional update: a new graph with the extra edges added. *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced by the vertex set [vs]
    (deduplicated), with vertices renumbered [0 .. |vs|-1] in the
    sorted order of [vs].  The second component maps new indices back
    to original vertex ids. *)

val vertices : t -> int list
(** [0; 1; ...; n-1]. *)

val equal : t -> t -> bool
(** Structural equality (same vertex count, same edge set). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. [digraph(4){0->1; 2->3}]. *)
