(** Strongly connected components (Tarjan's algorithm, iterative).

    Used to identify the {e source components} of the stage-one
    knowledge graph in the Section VI protocol: a process decides on a
    value chosen from the unique source component it is reachable
    from. *)

type result = {
  count : int;  (** Number of strongly connected components. *)
  comp_of : int array;
      (** [comp_of.(v)] is the component index of vertex [v], in
          [0 .. count-1].  Indices are assigned in reverse topological
          order of the condensation: if there is an edge from
          component [a] to component [b] (with [a <> b]) then
          [comp_of] satisfies [a > b].  In particular component [0] is
          a sink of the condensation. *)
}

val compute : Digraph.t -> result
(** Tarjan's strongly-connected-components algorithm; linear in
    vertices + edges; iterative, so safe on deep graphs. *)

val components : Digraph.t -> int list list
(** The components as sorted vertex lists, indexed consistently with
    [comp_of] (element [i] of the list is component [i]). *)

val same_component : result -> int -> int -> bool
(** Whether two vertices are strongly connected. *)
