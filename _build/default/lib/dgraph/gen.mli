(** Random digraph generators for tests and benchmarks.

    All generators are deterministic functions of the supplied
    {!Ksa_prim.Rng.t}. *)

val gnp : Ksa_prim.Rng.t -> n:int -> p:float -> Digraph.t
(** Erdős–Rényi style digraph: each ordered pair [(u,v)], [u <> v],
    is an edge independently with probability [p]. *)

val min_in_degree : Ksa_prim.Rng.t -> n:int -> delta:int -> Digraph.t
(** A digraph in which every vertex has in-degree at least [delta]:
    each vertex independently picks [delta] distinct in-neighbours
    uniformly.  This is exactly the shape of a stage-one knowledge
    graph where every process waited for [delta] messages.
    @raise Invalid_argument unless [0 <= delta < n]. *)

val knowledge_graph : Ksa_prim.Rng.t -> n:int -> alive:int list -> wait_for:int -> Digraph.t
(** A stage-one knowledge graph of the Section VI protocol over the
    process set [0..n-1] of which only [alive] take steps: every alive
    vertex picks [wait_for] distinct in-neighbours among the other
    alive vertices.  Crashed (not alive) vertices are isolated.
    @raise Invalid_argument if [wait_for] exceeds
    [List.length alive - 1]. *)

val cycle : int -> Digraph.t
(** The directed cycle 0 → 1 → ... → n-1 → 0 (min in-degree 1,
    single source component of size n). *)

val union_of_cliques : sizes:int list -> Digraph.t
(** Disjoint union of complete digraphs of the given sizes: the
    extreme case with [List.length sizes] source components. *)
