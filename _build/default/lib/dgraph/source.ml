let source_components g =
  let t = Condensation.compute g in
  let comps = List.map (fun c -> t.Condensation.members.(c)) (Condensation.sources t) in
  List.sort compare comps

let source_component_count g = List.length (source_components g)

(* Components of the condensation DAG from which [c0] is reachable,
   via BFS on reversed DAG edges. *)
let dag_ancestors dag c0 =
  let size = Digraph.n dag in
  let seen = Array.make size false in
  let rec bfs frontier =
    match frontier with
    | [] -> ()
    | c :: rest ->
        let next =
          List.filter
            (fun p ->
              if seen.(p) then false
              else begin
                seen.(p) <- true;
                true
              end)
            (Digraph.pred dag c)
        in
        bfs (List.rev_append next rest)
  in
  seen.(c0) <- true;
  bfs [ c0 ];
  seen

let reachable_sources g v =
  let t = Condensation.compute g in
  let seen = dag_ancestors t.Condensation.dag (Condensation.component_of t v) in
  let srcs =
    List.filter (fun c -> seen.(c)) (Condensation.sources t)
  in
  List.sort compare (List.map (fun c -> t.Condensation.members.(c)) srcs)

let decision_source g v =
  match reachable_sources g v with
  | [] -> assert false (* Lemma 7: impossible *)
  | first :: _ -> first (* sorted by smallest member: deterministic rule *)

let max_source_components ~n ~delta =
  if n < 0 || delta < 0 then invalid_arg "Source.max_source_components";
  n / (delta + 1)

let lemma6_holds g =
  let delta = Digraph.min_in_degree g in
  if delta <= 0 || Digraph.n g = 0 then true
  else
    List.exists (fun c -> List.length c >= delta + 1) (source_components g)

let lemma7_holds g =
  let delta = Digraph.min_in_degree g in
  if delta <= 0 || Digraph.n g = 0 then true
  else
    let weak = Weak_components.compute g in
    List.for_all
      (fun wc ->
        let sub, back = Digraph.induced g wc in
        (* a source component of g inside this weak component is also a
           source component of the induced subgraph, and vice versa,
           because no edges cross weak-component boundaries *)
        List.exists
          (fun c -> List.length c >= delta + 1)
          (List.map (List.map (fun v -> back.(v))) (source_components sub)))
      weak

let unique_source_if_majority g =
  let delta = Digraph.min_in_degree g in
  if delta <= 0 || 2 * delta < Digraph.n g then true
  else source_component_count g = 1
