(* Union-find with path compression and union by rank. *)

type uf = { parent : int array; rank : int array }

let uf_create size = { parent = Array.init size Fun.id; rank = Array.make size 0 }

let rec uf_find uf v =
  let p = uf.parent.(v) in
  if p = v then v
  else begin
    let root = uf_find uf p in
    uf.parent.(v) <- root;
    root
  end

let uf_union uf u v =
  let ru = uf_find uf u and rv = uf_find uf v in
  if ru <> rv then
    if uf.rank.(ru) < uf.rank.(rv) then uf.parent.(ru) <- rv
    else if uf.rank.(ru) > uf.rank.(rv) then uf.parent.(rv) <- ru
    else begin
      uf.parent.(rv) <- ru;
      uf.rank.(ru) <- uf.rank.(ru) + 1
    end

let build g =
  let uf = uf_create (Digraph.n g) in
  List.iter (fun (u, v) -> uf_union uf u v) (Digraph.edges g);
  uf

let compute g =
  let uf = build g in
  let buckets = Hashtbl.create 16 in
  for v = Digraph.n g - 1 downto 0 do
    let r = uf_find uf v in
    let existing = Option.value ~default:[] (Hashtbl.find_opt buckets r) in
    Hashtbl.replace buckets r (v :: existing)
  done;
  Hashtbl.fold (fun _ vs acc -> vs :: acc) buckets []
  |> List.sort compare

let count g = List.length (compute g)

let same g u v =
  let uf = build g in
  uf_find uf u = uf_find uf v
