(** The generalized quorum failure detector Σ{_k} (Definition 4).

    Σ{_k} outputs a set of trusted process ids such that:

    - {b Intersection}: for every k+1 processes p{_1} … p{_(k+1)} and
      times t{_1} … t{_(k+1)}, some two outputs H(p{_i}, t{_i}) and
      H(p{_j}, t{_j}) intersect;
    - {b Liveness}: from some time on, outputs at correct processes
      contain only correct processes.

    A crashed process outputs Π from its crash time on (the paper's
    convention, which makes crashed processes harmless for
    intersection).

    This module provides canonical {e generators} of valid Σ{_k}
    histories and {e validators} that check the two properties on any
    history — the executable form of Definition 4, which is what
    Lemma 9 and experiment E7 need. *)

module Pid = Ksa_sim.Pid

(** {1 Generators} *)

val blocks :
  ?groups:Pid.t list list ->
  k:int ->
  pattern:Ksa_sim.Failure_pattern.t ->
  stab:int ->
  horizon:int ->
  unit ->
  History.t
(** The block construction: partition Π into at most [k] groups
    ([groups] defaults to [k] contiguous chunks); a process in group B
    outputs B before time [stab] and B ∩ correct afterwards.  Any
    k+1 processes include two in a common group whose outputs
    intersect (both contain the correct ones of that pair, or one is
    crashed and outputs Π), so the history is a valid Σ{_k} history
    for {e any} failure pattern.  For [k = 1] with one group = Π this
    is the trivial Σ.  @raise Invalid_argument if more than [k]
    groups are supplied or a group is empty. *)

val majority :
  pattern:Ksa_sim.Failure_pattern.t ->
  rng:Ksa_prim.Rng.t ->
  stab:int ->
  horizon:int ->
  unit ->
  History.t
(** A Σ = Σ{_1} history made of rotating majority quorums (any two
    majorities intersect); after [stab], the quorum is a majority of
    correct processes.  Valid only when a majority is correct:
    @raise Invalid_argument otherwise. *)

(** {1 Validators} *)

val check_liveness :
  pattern:Ksa_sim.Failure_pattern.t -> History.t -> (int, string) result
(** [Ok t]: from time [t] on (within the horizon), every correct
    process's quorum avoids the faulty set.  [Error _] if no such
    time exists by the horizon, or a view lacks a quorum component. *)

val find_intersection_violation :
  k:int -> pattern:Ksa_sim.Failure_pattern.t -> History.t ->
  (Pid.t * int) list option
(** Exhaustive search for k+1 (process, time) pairs whose quorums are
    pairwise disjoint — a witness that the history is {e not} a
    Σ{_k} history.  Exploits that generated histories have few
    distinct quorums per process: per-process quorum sets are
    deduplicated before the search.  [None] means the intersection
    property holds (this is a complete decision procedure over the
    horizon). *)

val validate :
  k:int -> pattern:Ksa_sim.Failure_pattern.t -> History.t ->
  (unit, string) result
(** Both properties. *)
