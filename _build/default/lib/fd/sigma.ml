module Pid = Ksa_sim.Pid
module Fd_view = Ksa_sim.Fd_view
module Failure_pattern = Ksa_sim.Failure_pattern
module Listx = Ksa_prim.Listx
module Rng = Ksa_prim.Rng

let default_groups ~n ~k =
  let base = n / k and extra = n mod k in
  let rec build start gi =
    if gi >= k || start >= n then []
    else
      let size = base + if gi < extra then 1 else 0 in
      let size = min size (n - start) in
      if size = 0 then []
      else Listx.range start (start + size) :: build (start + size) (gi + 1)
  in
  build 0 0

let blocks ?groups ~k ~pattern ~stab ~horizon () =
  let n = Failure_pattern.n pattern in
  let groups = match groups with Some g -> g | None -> default_groups ~n ~k in
  if List.length groups > k then invalid_arg "Sigma.blocks: more than k groups";
  if List.exists (fun g -> g = []) groups then
    invalid_arg "Sigma.blocks: empty group";
  if not (Listx.pairwise_disjoint groups) then
    invalid_arg "Sigma.blocks: overlapping groups";
  let covered = List.concat groups in
  if List.sort_uniq compare covered <> Pid.universe n then
    invalid_arg "Sigma.blocks: groups must cover the process set";
  let group_of = Array.make n [] in
  List.iter (fun g -> List.iter (fun p -> group_of.(p) <- g) g) groups;
  let correct = Failure_pattern.correct pattern in
  let universe = Pid.universe n in
  History.make ~n ~horizon (fun ~time ~me ->
      if Failure_pattern.is_crashed pattern me ~time then Fd_view.Quorum universe
      else if time < stab then Fd_view.Quorum group_of.(me)
      else Fd_view.Quorum (List.filter (fun p -> List.mem p correct) group_of.(me)))

let majority ~pattern ~rng ~stab ~horizon () =
  let n = Failure_pattern.n pattern in
  let correct = Failure_pattern.correct pattern in
  let m = (n / 2) + 1 in
  if List.length correct < m then
    invalid_arg "Sigma.majority: needs a correct majority";
  let universe = Pid.universe n in
  (* precompute one random majority per time step, shared by all alive
     processes at that time (outputs at different processes may differ
     in general; sharing keeps the generator simple and valid) *)
  let quorums =
    Array.init (horizon + 1) (fun t ->
        if t >= stab then correct
        else List.sort compare (Rng.sample rng m universe))
  in
  History.make ~n ~horizon (fun ~time ~me ->
      if Failure_pattern.is_crashed pattern me ~time then Fd_view.Quorum universe
      else Fd_view.Quorum quorums.(min time horizon))

let quorum_exn view =
  match Fd_view.quorum view with
  | Some q -> q
  | None -> invalid_arg "Sigma: history view has no quorum component"

let check_liveness ~pattern h =
  let faulty = Failure_pattern.faulty pattern in
  let correct = Failure_pattern.correct pattern in
  let horizon = h.History.horizon in
  if horizon < 1 then Error "horizon must be at least 1"
  else
    let clean_at time =
      List.for_all
        (fun p ->
          Listx.disjoint (quorum_exn (h.History.view ~time ~me:p)) faulty)
        correct
    in
    let rec last_bad time acc =
      if time > horizon then acc
      else last_bad (time + 1) (if clean_at time then acc else time)
    in
    match last_bad 1 0 with
    | bad when bad >= horizon ->
        Error "liveness: no stabilization time within the horizon"
    | bad -> Ok (bad + 1)

(* Exhaustive refutation search for the intersection property.  For
   each process we collect its distinct quorums over the horizon (with
   a witness time each), then look for k+1 processes and one quorum
   each, pairwise disjoint. *)
let find_intersection_violation ~k ~pattern h =
  ignore pattern;
  let n = h.History.n in
  let horizon = h.History.horizon in
  let candidates =
    Array.init n (fun p ->
        let tbl = Hashtbl.create 8 in
        for time = 1 to horizon do
          let q = List.sort_uniq compare (quorum_exn (h.History.view ~time ~me:p)) in
          if not (Hashtbl.mem tbl q) then Hashtbl.add tbl q time
        done;
        Hashtbl.fold (fun q time acc -> (Pid.set_of_list q, time) :: acc) tbl [])
  in
  let disjoint_sets a b = Pid.Set.is_empty (Pid.Set.inter a b) in
  let rec search chosen = function
    | [] -> Some (List.rev_map (fun (p, (_, t)) -> (p, t)) chosen)
    | p :: rest ->
        List.find_map
          (fun (q, t) ->
            if List.for_all (fun (_, (q', _)) -> disjoint_sets q q') chosen
            then search ((p, (q, t)) :: chosen) rest
            else None)
          candidates.(p)
  in
  List.find_map
    (fun combo -> search [] combo)
    (Listx.combinations (k + 1) (Pid.universe n))

let validate ~k ~pattern h =
  match check_liveness ~pattern h with
  | Error e -> Error e
  | Ok _ -> (
      match find_intersection_violation ~k ~pattern h with
      | None -> Ok ()
      | Some witness ->
          let buf = Buffer.create 64 in
          List.iter
            (fun (p, t) -> Buffer.add_string buf (Printf.sprintf " (p%d,t%d)" p t))
            witness;
          Error ("intersection violated by" ^ Buffer.contents buf))
