module Pid = Ksa_sim.Pid
module Fd_view = Ksa_sim.Fd_view
module Failure_pattern = Ksa_sim.Failure_pattern
module Listx = Ksa_prim.Listx

type spec = {
  groups : Pid.t list list;
  leaders : Pid.t list;
  tgst : int;
  stab : int;
}

let check_spec spec ~pattern =
  let n = Failure_pattern.n pattern in
  let k = List.length spec.groups in
  if k = 0 then invalid_arg "Partition_fd: no groups";
  if List.exists (fun g -> g = []) spec.groups then
    invalid_arg "Partition_fd: empty group";
  if not (Listx.pairwise_disjoint spec.groups) then
    invalid_arg "Partition_fd: overlapping groups";
  if List.sort_uniq compare (List.concat spec.groups) <> Pid.universe n then
    invalid_arg "Partition_fd: groups must partition the process set";
  if List.length (List.sort_uniq compare spec.leaders) <> k then
    invalid_arg "Partition_fd: leaders must be exactly k distinct ids";
  if Listx.disjoint spec.leaders (Failure_pattern.correct pattern) then
    invalid_arg "Partition_fd: leader set must contain a correct process";
  k

let gen spec ~pattern ~horizon =
  let k = check_spec spec ~pattern in
  let sigma =
    Sigma.blocks ~groups:spec.groups ~k ~pattern ~stab:spec.stab ~horizon ()
  in
  let omega =
    Omega.gen ~k ~pattern ~leaders:spec.leaders ~tgst:spec.tgst ~horizon ()
  in
  History.combine sigma omega

let quorum_exn view =
  match Fd_view.quorum view with
  | Some q -> q
  | None -> invalid_arg "Partition_fd: view has no quorum component"

let validate_partition_property spec ~pattern h =
  let k = check_spec spec ~pattern in
  let horizon = h.History.horizon in
  let n = h.History.n in
  let universe = Pid.universe n in
  let faulty = Failure_pattern.faulty pattern in
  let exception Bad of string in
  try
    (* per-group Σ = Σ1 conditions *)
    List.iteri
      (fun gi group ->
        (* confinement + crashed-outputs-Π *)
        List.iter
          (fun p ->
            for time = 1 to horizon do
              let q =
                List.sort_uniq compare (quorum_exn (h.History.view ~time ~me:p))
              in
              if Failure_pattern.is_crashed pattern p ~time then begin
                if q <> universe then
                  raise
                    (Bad
                       (Printf.sprintf
                          "crashed p%d must output the whole system at t%d" p
                          time))
              end
              else if not (Listx.subset q group) then
                raise
                  (Bad
                     (Printf.sprintf
                        "quorum of p%d at t%d leaves its group D%d" p time
                        (gi + 1)))
            done)
          group;
        (* pairwise intersection inside the group *)
        List.iter
          (fun p1 ->
            List.iter
              (fun p2 ->
                for t1 = 1 to horizon do
                  for t2 = t1 to horizon do
                    let q1 = quorum_exn (h.History.view ~time:t1 ~me:p1)
                    and q2 = quorum_exn (h.History.view ~time:t2 ~me:p2) in
                    if Listx.intersect q1 q2 = [] then
                      raise
                        (Bad
                           (Printf.sprintf
                              "Σ' intersection violated in D%d by (p%d,t%d) \
                               and (p%d,t%d)"
                              (gi + 1) p1 t1 p2 t2))
                  done
                done)
              group)
          group;
        (* liveness inside the group: eventually alive quorums avoid F *)
        let alive = List.filter (fun p -> not (List.mem p faulty)) group in
        if alive <> [] then begin
          let clean time =
            List.for_all
              (fun p ->
                Listx.disjoint (quorum_exn (h.History.view ~time ~me:p)) faulty)
              alive
          in
          let rec last_bad time acc =
            if time > horizon then acc
            else last_bad (time + 1) (if clean time then acc else time)
          in
          if last_bad 1 0 >= horizon then
            raise
              (Bad
                 (Printf.sprintf "Σ' liveness fails in D%d within the horizon"
                    (gi + 1)))
        end)
      spec.groups;
    (* Ω side *)
    (match Omega.validate ~k ~pattern h with
    | Ok () -> ()
    | Error e -> raise (Bad ("Ω' side: " ^ e)));
    Ok ()
  with Bad msg -> Error msg

let lemma9_check ~k ~pattern h =
  match Sigma.validate ~k ~pattern h with
  | Error e -> Error ("as Σk: " ^ e)
  | Ok () -> (
      match Omega.validate ~k ~pattern h with
      | Error e -> Error ("as Ωk: " ^ e)
      | Ok () -> Ok ())
