(** Failure-detector transformations used in the proof of Theorem 10.

    Condition (C) of Theorem 10 equips the restricted system
    M' = ⟨D̄⟩ with a detector (Σ, Γ) where Γ is Ω'{_k} constrained to
    stabilize on a leader set LD intersecting D̄ in {e exactly two}
    processes p{_s}, p{_t}.  From Γ one can implement Ω{_2} for ⟨D̄⟩
    (output the two stabilized members of D̄), and since (Σ, Ω{_2})
    is strictly weaker than (Σ, Ω) — the weakest detector for
    consensus — the restricted system cannot solve consensus.

    This module implements the Γ generator, the Γ → Ω{_2}
    transformation, and the relativized Ω{_k} validator used to check
    the transformation's output. *)

module Pid = Ksa_sim.Pid

val gamma_gen :
  k:int ->
  dbar:Pid.t list ->
  chosen:Pid.t * Pid.t ->
  pattern:Ksa_sim.Failure_pattern.t ->
  tgst:int ->
  horizon:int ->
  unit ->
  History.t
(** An Ω{_k} history whose stabilized leader set intersects [dbar] in
    exactly the two processes [chosen] (filled up to size [k] with
    processes outside [dbar]).  At least one of the two must be
    correct.  @raise Invalid_argument if the two chosen ids are not
    distinct members of [dbar], if k < 2, or if
    [k - 2] processes outside [dbar] cannot be found. *)

val omega2_of_gamma : dbar:Pid.t list -> History.t -> History.t
(** The transformation A{_Γ→Ω₂}: each leader output [l] becomes
    [l ∩ dbar] when that intersection has exactly two members, and a
    fixed default pair from [dbar] otherwise.  After Γ stabilizes the
    output is constantly the chosen pair, so the result satisfies
    Ω{_2} relative to ⟨D̄⟩. *)

val validate_omega_within :
  k:int ->
  subsystem:Pid.t list ->
  pattern:Ksa_sim.Failure_pattern.t ->
  History.t ->
  (unit, string) result
(** Ω{_k} validity and eventual leadership relativized to a
    subsystem: every output (at subsystem members) is a k-subset of
    the subsystem, and eventually constant across alive subsystem
    members with a correct subsystem member inside. *)
