module Pid = Ksa_sim.Pid
module Fd_view = Ksa_sim.Fd_view
module Failure_pattern = Ksa_sim.Failure_pattern
module Rng = Ksa_prim.Rng
module Listx = Ksa_prim.Listx

let default_chaos ~n ~k ~time ~me =
  ignore me;
  List.init k (fun i -> (time + i) mod n)

let gen ?chaos ~k ~pattern ~leaders ~tgst ~horizon () =
  let n = Failure_pattern.n pattern in
  let leaders = List.sort_uniq compare leaders in
  if List.length leaders <> k then
    invalid_arg "Omega.gen: leaders must be exactly k distinct ids";
  if not (List.for_all (fun p -> Pid.valid ~n p) leaders) then
    invalid_arg "Omega.gen: invalid leader id";
  let correct = Failure_pattern.correct pattern in
  if Listx.disjoint leaders correct then
    invalid_arg "Omega.gen: leader set must contain a correct process";
  let chaos =
    match chaos with Some f -> f | None -> fun ~time ~me -> default_chaos ~n ~k ~time ~me
  in
  History.make ~n ~horizon (fun ~time ~me ->
      if time >= tgst then Fd_view.Leaders leaders
      else
        let out = chaos ~time ~me in
        if List.length (List.sort_uniq compare out) <> k then
          invalid_arg "Omega.gen: chaos output must have exactly k ids";
        Fd_view.Leaders out)

let random_chaos ~rng ~n ~k =
  let cache : (int * int, Pid.t list) Hashtbl.t = Hashtbl.create 64 in
  fun ~time ~me ->
    match Hashtbl.find_opt cache (time, me) with
    | Some out -> out
    | None ->
        let out = List.sort compare (Rng.sample rng k (Pid.universe n)) in
        Hashtbl.add cache (time, me) out;
        out

let leaders_exn view =
  match Fd_view.leaders view with
  | Some l -> l
  | None -> invalid_arg "Omega: history view has no leader component"

let check_validity ~k h =
  let n = h.History.n in
  let horizon = h.History.horizon in
  let rec go time =
    if time > horizon then Ok ()
    else
      let rec per_pid p =
        if p >= n then go (time + 1)
        else
          let l = leaders_exn (h.History.view ~time ~me:p) in
          if List.length (List.sort_uniq compare l) <> k then
            Error
              (Printf.sprintf "validity: |H(p%d,%d)| = %d, expected %d" p time
                 (List.length (List.sort_uniq compare l))
                 k)
          else per_pid (p + 1)
      in
      per_pid 0
  in
  go 1

let check_eventual_leadership ~pattern h =
  let n = h.History.n in
  let horizon = h.History.horizon in
  let correct = Failure_pattern.correct pattern in
  if correct = [] then Error "no correct process"
  else
    let view_at time p = leaders_exn (h.History.view ~time ~me:p) in
    let ld = List.sort_uniq compare (view_at horizon (List.hd correct)) in
    if Listx.disjoint ld correct then
      Error "eventual leadership: final leader set contains no correct process"
    else
      (* find the least tgst from which every not-yet-crashed process
         sees exactly ld *)
      let agrees time =
        List.for_all
          (fun p ->
            Failure_pattern.is_crashed pattern p ~time
            || List.sort_uniq compare (view_at time p) = ld)
          (Pid.universe n)
      in
      let rec scan time last_bad =
        if time > horizon then last_bad
        else scan (time + 1) (if agrees time then last_bad else time)
      in
      let last_bad = scan 1 0 in
      if last_bad >= horizon then
        Error "eventual leadership: no stabilization within the horizon"
      else Ok (last_bad + 1, ld)

let validate ~k ~pattern h =
  match check_validity ~k h with
  | Error e -> Error e
  | Ok () -> (
      match check_eventual_leadership ~pattern h with
      | Error e -> Error e
      | Ok _ -> Ok ())
