module Pid = Ksa_sim.Pid
module Fd_view = Ksa_sim.Fd_view
module Failure_pattern = Ksa_sim.Failure_pattern
module Listx = Ksa_prim.Listx

let gamma_gen ~k ~dbar ~chosen:(ps, pt) ~pattern ~tgst ~horizon () =
  if k < 2 then invalid_arg "Transform.gamma_gen: k must be at least 2";
  if Pid.equal ps pt || (not (List.mem ps dbar)) || not (List.mem pt dbar) then
    invalid_arg "Transform.gamma_gen: chosen pair must be two distinct members of dbar";
  let n = Failure_pattern.n pattern in
  let outside = List.filter (fun p -> not (List.mem p dbar)) (Pid.universe n) in
  if List.length outside < k - 2 then
    invalid_arg "Transform.gamma_gen: not enough processes outside dbar";
  let leaders = List.sort compare (ps :: pt :: Listx.take (k - 2) outside) in
  Omega.gen ~k ~pattern ~leaders ~tgst ~horizon ()

let omega2_of_gamma ~dbar h =
  let default =
    match List.sort_uniq compare dbar with
    | a :: b :: _ -> [ a; b ]
    | _ -> invalid_arg "Transform.omega2_of_gamma: dbar needs two members"
  in
  History.map h (fun view ->
      match Fd_view.leaders view with
      | None -> invalid_arg "Transform.omega2_of_gamma: no leader component"
      | Some l -> (
          match Listx.intersect l dbar with
          | [ a; b ] -> Fd_view.Leaders [ a; b ]
          | _ -> Fd_view.Leaders default))

let leaders_exn view =
  match Fd_view.leaders view with
  | Some l -> List.sort_uniq compare l
  | None -> invalid_arg "Transform: view has no leader component"

let validate_omega_within ~k ~subsystem ~pattern h =
  let horizon = h.History.horizon in
  let correct_members =
    List.filter (fun p -> not (Failure_pattern.is_faulty pattern p)) subsystem
  in
  let exception Bad of string in
  try
    (* validity relative to the subsystem *)
    List.iter
      (fun p ->
        for time = 1 to horizon do
          let l = leaders_exn (h.History.view ~time ~me:p) in
          if List.length l <> k then
            raise
              (Bad (Printf.sprintf "validity: |H(p%d,%d)| <> %d" p time k));
          if not (Listx.subset l subsystem) then
            raise
              (Bad
                 (Printf.sprintf "validity: H(p%d,%d) leaves the subsystem" p
                    time))
        done)
      subsystem;
    (* eventual leadership relative to the subsystem *)
    (match correct_members with
    | [] -> raise (Bad "no correct process in the subsystem")
    | w :: _ ->
        let ld = leaders_exn (h.History.view ~time:horizon ~me:w) in
        if Listx.disjoint ld correct_members then
          raise (Bad "final leader set has no correct subsystem member");
        let agrees time =
          List.for_all
            (fun p ->
              Failure_pattern.is_crashed pattern p ~time
              || leaders_exn (h.History.view ~time ~me:p) = ld)
            subsystem
        in
        let rec scan time last_bad =
          if time > horizon then last_bad
          else scan (time + 1) (if agrees time then last_bad else time)
        in
        if scan 1 0 >= horizon then
          raise (Bad "no stabilization within the horizon"));
    Ok ()
  with Bad msg -> Error msg
