lib/fd/omega.ml: Hashtbl History Ksa_prim Ksa_sim List Printf
