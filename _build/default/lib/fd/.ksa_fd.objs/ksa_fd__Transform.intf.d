lib/fd/transform.mli: History Ksa_sim
