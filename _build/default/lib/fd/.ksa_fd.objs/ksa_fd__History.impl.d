lib/fd/history.ml: Array Ksa_sim List
