lib/fd/history.mli: Ksa_sim
