lib/fd/sigma.mli: History Ksa_prim Ksa_sim
