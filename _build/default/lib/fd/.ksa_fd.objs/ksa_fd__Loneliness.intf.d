lib/fd/loneliness.mli: History Ksa_sim
