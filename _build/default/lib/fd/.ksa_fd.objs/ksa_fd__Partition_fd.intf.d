lib/fd/partition_fd.mli: History Ksa_sim
