lib/fd/partition_fd.ml: History Ksa_prim Ksa_sim List Omega Printf Sigma
