lib/fd/impl.mli: History Ksa_sim
