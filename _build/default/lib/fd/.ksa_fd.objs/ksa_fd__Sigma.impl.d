lib/fd/sigma.ml: Array Buffer Hashtbl History Ksa_prim Ksa_sim List Printf
