lib/fd/loneliness.ml: History Ksa_sim List
