lib/fd/omega.mli: History Ksa_prim Ksa_sim
