lib/fd/impl.ml: Array Format Fun History Ksa_sim List
