lib/fd/transform.ml: History Ksa_prim Ksa_sim List Omega Printf
