(** The loneliness failure detector L.

    L is the weakest failure detector for (n−1)-set agreement in
    message passing (Delporte-Gallet et al., DISC'08); the paper's
    companion work (reference [2], Biely–Robinson–Schmid OPODIS'09)
    generalizes it to L(k).  We provide the classic L as a
    complement to the (Σ{_k}, Ω{_k}) family studied in Section VII:

    - {b Safety}: at least one process outputs [false] forever;
    - {b Liveness}: if exactly one process is correct, L eventually
      outputs [true] forever at that process.

    Note that L may output [true] {e spuriously} at up to n−1
    processes; an algorithm using L must stay safe under such lies,
    which is exactly what makes the detector weak. *)

module Pid = Ksa_sim.Pid

val gen :
  ?liars:Pid.t list ->
  ?from:int ->
  witness:Pid.t ->
  pattern:Ksa_sim.Failure_pattern.t ->
  horizon:int ->
  unit ->
  History.t
(** A valid L history: [witness] outputs [false] forever; processes in
    [liars] (which must not contain [witness]) output [true] from time
    [from] (default 1) on; if exactly one process is correct it
    outputs [true] from [from] on (it is then automatically treated as
    a liar-or-truthful true).  Everyone else outputs [false].
    @raise Invalid_argument if [witness ∈ liars], or if exactly one
    process is correct and it is the [witness]. *)

val validate :
  pattern:Ksa_sim.Failure_pattern.t -> History.t -> (unit, string) result
