(** The partition failure detector (Σ'{_k}, Ω'{_k}) of Definition 7.

    Given a partitioning \{D{_1}, …, D{_(k-1)}, D{_k} = D̄\} of Π, the
    detector outputs pairs [(quorum, leaders)] such that:

    1. the Σ'{_k} output at every process of D{_i} is a valid Σ = Σ{_1}
       history of the {e restricted} system ⟨D{_i}⟩ — only members of
       D{_i} are ever trusted — except that a crashed process outputs
       Π from its crash time on;
    2. Ω'{_k} = Ω{_k}: a common leader set LD of size k appears at all
       processes from some t{_GST} on, with LD ∩ correct ≠ ∅.

    Lemma 9 shows every such history is also a valid (Σ{_k}, Ω{_k})
    history; experiment E7 replays that lemma through the validators
    of {!Sigma} and {!Omega}.  The point of the construction
    (Theorem 10) is that Σ'{_k} quorums never cross partition
    boundaries, so the detector cannot prevent the k groups from
    deciding independently. *)

module Pid = Ksa_sim.Pid

type spec = {
  groups : Pid.t list list;
      (** The partitioning D{_1}, …, D{_k}; must be disjoint, nonempty,
          and cover Π.  By the paper's convention the last group is
          D̄. *)
  leaders : Pid.t list;  (** LD: exactly k ids, at least one correct. *)
  tgst : int;
  stab : int;  (** Σ-side stabilization time within each group. *)
}

val gen :
  spec -> pattern:Ksa_sim.Failure_pattern.t -> horizon:int -> History.t
(** A valid (Σ'{_k}, Ω'{_k}) history: process p ∈ D{_i} sees
    [Pair (Quorum q, Leaders l)] with [q] = D{_i} before [stab] and
    D{_i} ∩ correct afterwards (Π if p has crashed), and [l] as in
    {!Omega.gen} with the rotating-window chaos before [tgst].
    @raise Invalid_argument on a malformed spec. *)

val validate_partition_property :
  spec -> pattern:Ksa_sim.Failure_pattern.t -> History.t -> (unit, string) result
(** Checks Definition 7 itself on a history: every alive quorum at
    p ∈ D{_i} is a subset of D{_i}, quorums within each group satisfy
    Σ = Σ{_1} intersection and liveness relative to ⟨D{_i}⟩, crashed
    processes output Π, and the Ω component satisfies Ω{_k}. *)

val lemma9_check :
  k:int -> pattern:Ksa_sim.Failure_pattern.t -> History.t -> (unit, string) result
(** The executable Lemma 9: the history validates as a Σ{_k} history
    (intersection + liveness) {e and} as an Ω{_k} history. *)
