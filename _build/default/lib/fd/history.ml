module Pid = Ksa_sim.Pid
module Fd_view = Ksa_sim.Fd_view

type t = {
  n : int;
  horizon : int;
  view : time:int -> me:Pid.t -> Fd_view.t;
}

let make ~n ~horizon f =
  let view ~time ~me = f ~time:(min time horizon) ~me in
  { n; horizon; view }

let oracle t ~time ~me = t.view ~time ~me

let tabulate t =
  Array.init (t.horizon + 1) (fun time ->
      let time = max time 1 in
      Array.init t.n (fun p -> t.view ~time ~me:p))

let map t f = { t with view = (fun ~time ~me -> f (t.view ~time ~me)) }

let combine a b =
  if a.n <> b.n then invalid_arg "History.combine: size mismatch";
  {
    n = a.n;
    horizon = max a.horizon b.horizon;
    view =
      (fun ~time ~me -> Fd_view.Pair (a.view ~time ~me, b.view ~time ~me));
  }

let splice ~inside ha hb =
  if ha.n <> hb.n then invalid_arg "History.splice: size mismatch";
  {
    n = ha.n;
    horizon = max ha.horizon hb.horizon;
    view =
      (fun ~time ~me ->
        if List.mem me inside then ha.view ~time ~me else hb.view ~time ~me);
  }

let override_from ~time:cut h f =
  {
    h with
    horizon = max h.horizon cut;
    view = (fun ~time ~me -> if time >= cut then f ~me else h.view ~time ~me);
  }
