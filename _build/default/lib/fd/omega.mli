(** The generalized leader oracle Ω{_k} (Definition 5).

    Outputs are always sets of exactly k process ids ({b Validity});
    there is a time t{_GST} and a set LD intersecting the correct
    processes such that every query from t{_GST} on returns LD
    ({b Eventual Leadership}). *)

module Pid = Ksa_sim.Pid

val gen :
  ?chaos:(time:int -> me:Pid.t -> Pid.t list) ->
  k:int ->
  pattern:Ksa_sim.Failure_pattern.t ->
  leaders:Pid.t list ->
  tgst:int ->
  horizon:int ->
  unit ->
  History.t
(** A valid Ω{_k} history: before [tgst] processes see [chaos]
    (default: the rotating window \{t mod n, …, (t+k-1) mod n\} of
    size k, different at different times — maximally unstable); from
    [tgst] on everyone sees [leaders].  @raise Invalid_argument
    unless [leaders] has exactly [k] distinct ids, at least one of
    them correct, and every [chaos] output has size [k]
    (checked lazily at query time). *)

val random_chaos : rng:Ksa_prim.Rng.t -> n:int -> k:int -> time:int -> me:Pid.t -> Pid.t list
(** A [chaos] function drawing a fresh uniform k-subset per query
    (deterministic per (time, me) pair thanks to internal caching). *)

val check_validity : k:int -> History.t -> (unit, string) result
(** Every view over the horizon has a leader component of exactly [k]
    distinct ids. *)

val check_eventual_leadership :
  pattern:Ksa_sim.Failure_pattern.t -> History.t -> (int * Pid.t list, string) result
(** [Ok (tgst, ld)]: from [tgst] on every process sees the constant
    set [ld], which intersects the correct set.  Processes crashed
    before a time are exempt from the agreement requirement at that
    time (they no longer query). *)

val validate :
  k:int -> pattern:Ksa_sim.Failure_pattern.t -> History.t -> (unit, string) result
