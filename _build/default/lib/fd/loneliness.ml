module Pid = Ksa_sim.Pid
module Fd_view = Ksa_sim.Fd_view
module Failure_pattern = Ksa_sim.Failure_pattern

let gen ?(liars = []) ?(from = 1) ~witness ~pattern ~horizon () =
  let n = Failure_pattern.n pattern in
  if List.mem witness liars then invalid_arg "Loneliness.gen: witness lies";
  let correct = Failure_pattern.correct pattern in
  let sole_correct = match correct with [ p ] -> Some p | _ -> None in
  (match sole_correct with
  | Some p when Pid.equal p witness ->
      invalid_arg "Loneliness.gen: the witness cannot be the sole correct process"
  | Some _ | None -> ());
  History.make ~n ~horizon (fun ~time ~me ->
      let lonely =
        (not (Pid.equal me witness))
        && time >= from
        && (List.mem me liars || sole_correct = Some me)
      in
      Fd_view.Lonely lonely)

let lonely_exn view =
  match Fd_view.lonely view with
  | Some b -> b
  | None -> invalid_arg "Loneliness: view has no boolean component"

let validate ~pattern h =
  let n = h.History.n in
  let horizon = h.History.horizon in
  let always_false p =
    let rec go time =
      time > horizon
      || ((not (lonely_exn (h.History.view ~time ~me:p))) && go (time + 1))
    in
    go 1
  in
  if not (List.exists always_false (Pid.universe n)) then
    Error "safety: every process claims loneliness at some time"
  else
    match Failure_pattern.correct pattern with
    | [ p ] ->
        if lonely_exn (h.History.view ~time:horizon ~me:p) then Ok ()
        else Error "liveness: the sole correct process never becomes lonely"
    | _ -> Ok ()
