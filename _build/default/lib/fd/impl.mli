(** Failure-detector {e implementations} from partial synchrony.

    The paper treats Σ{_k} and Ω{_k} axiomatically; in deployments
    they are implemented from timing assumptions.  This module closes
    the loop for the classic k = 1 detectors: run a heartbeat protocol
    under the {!Ksa_sim.Adversary.eventually_lockstep} schedule (an
    asynchronous prefix followed by a lock-step, full-delivery
    suffix — the GST-style partial synchrony of Dwork–Lynch–
    Stockmeyer), and {e extract} detector histories from the recorded
    run:

    - Ω: trust the smallest process id heard from within a sliding
      window (plus yourself);
    - Σ: output your recently-heard set whenever it reaches a
      majority, and fall back to the whole system Π otherwise — every
      output is a majority or Π, so any two outputs intersect by
      counting, with no timing assumption at all; liveness comes from
      the post-GST suffix.

    The extracted histories are then checked with the axiomatic
    validators of {!Omega} and {!Sigma}: the experiments' evidence
    that "just enough synchrony" (the paper's future-work direction
    (iii)) does implement the oracles that circumvent Theorem 1. *)

module Heartbeat : Ksa_sim.Algorithm.S
(** Broadcasts a beat in every step and never decides; drive it with
    a step budget.  The beat payload carries the sender's step
    counter (so states differ across steps and runs stay replayable). *)

val omega_of_run : Ksa_sim.Run.t -> window:int -> History.t
(** The Ω = Ω{_1} extraction with the given sliding window (in global
    steps).  The horizon is the run's last step time. *)

val sigma_of_run : Ksa_sim.Run.t -> window:int -> History.t
(** The Σ = Σ{_1} extraction (majority-or-Π rule).  Intersection
    holds unconditionally; liveness requires a correct majority and a
    window spanning the post-GST gossip delay (≳ 2n). *)
