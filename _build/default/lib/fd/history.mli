(** Concrete failure-detector histories H(p, t).

    A history assigns every process at every time the value it would
    obtain by querying the detector (Section II-C).  Histories here
    carry a [horizon]: all generators produce histories that are
    constant from the horizon on (stabilization has happened), so
    clamping queries beyond the horizon is exact, and validators can
    decide eventual properties by inspecting times [1 .. horizon]. *)

type t = {
  n : int;
  horizon : int;  (** Stabilization-complete by this time. *)
  view : time:int -> me:Ksa_sim.Pid.t -> Ksa_sim.Fd_view.t;
}

val make :
  n:int -> horizon:int ->
  (time:int -> me:Ksa_sim.Pid.t -> Ksa_sim.Fd_view.t) -> t
(** Wraps the function with clamping: queries at [time > horizon] see
    the value at [horizon]. *)

val oracle : t -> Ksa_sim.Fd_view.oracle
(** The history as an engine oracle. *)

val tabulate : t -> Ksa_sim.Fd_view.t array array
(** [tabulate h] is a [(horizon+1) × n] table; row [t] (for
    [t ≥ 1]) column [p] is H(p, t).  Row 0 is unused (time is
    1-based) and repeats row 1. *)

val map : t -> (Ksa_sim.Fd_view.t -> Ksa_sim.Fd_view.t) -> t

val combine : t -> t -> t
(** Pointwise product history: [Pair (a, b)] at every (p, t).  The
    horizons must agree on [n]; the horizon is the max of the two. *)

val splice : inside:Ksa_sim.Pid.t list -> t -> t -> t
(** [splice ~inside ha hb] shows [ha]'s values to processes in
    [inside] and [hb]'s to all others — the history surgery of
    Lemma 11, item 1 (replacing H{_β}(p, ·) by H{_α}(p, ·) for
    p ∈ D̄). *)

val override_from : time:int -> t -> (me:Ksa_sim.Pid.t -> Ksa_sim.Fd_view.t) -> t
(** [override_from ~time h f]: before [time], as [h]; from [time] on,
    [f].  Used to impose a common post-t{_GST} leader set (Lemma 11,
    item 5). *)
