(* Quickstart: run the paper's Section VI protocol (k-set agreement
   with initially dead processes) on a 6-process system with 2 initial
   crashes, under a random fair schedule.

     dune exec examples/quickstart.exe *)

module Sim = Ksa_sim

(* The protocol is parameterized by L; the paper's choice for f
   initial crashes is L = n - f.  Here n = 6, f = 2, so L = 4 and the
   protocol guarantees at most floor(6/4) = 1 distinct decision:
   consensus, despite two processes never taking a step. *)
module K = Ksa_algo.Kset_flp.Make (struct
  let l = Ksa_algo.Kset_flp.kset_l ~n:6 ~f:2
end)

module Engine = Sim.Engine.Make (K)

let () =
  let n = 6 in
  let inputs = Sim.Value.distinct_inputs n in
  let pattern = Sim.Failure_pattern.initial_dead ~n ~dead:[ 1; 4 ] in
  let rng = Ksa_prim.Rng.create ~seed:2026 in
  let run =
    Engine.run ~n ~inputs ~pattern (Sim.Adversary.fair ~rng)
  in
  Format.printf "run summary: %a@." Sim.Run.pp_summary run;
  List.iter
    (fun (p, v, t) ->
      Format.printf "  %a decided %a at step %d@." Sim.Pid.pp p Sim.Value.pp v t)
    run.Sim.Run.decisions;
  (* check the k-set agreement spec mechanically *)
  match Ksa_core.Kset_spec.check ~k:1 run with
  | Ok () -> Format.printf "spec check: consensus reached despite 2 initial crashes@."
  | Error e -> Format.printf "spec check FAILED: %s@." e
