(* The partitioning argument of Theorem 2 / Section VI, narrated.

   We take the paper's own protocol with L = 2 on n = 6 processes.
   L = n - f corresponds to tolerating f = 4 initial crashes, for
   which Theorem 8 says only k >= floor(4/2) = 2 is solvable - and the
   border case kn = (k+1)f at k = 2 (6*2 = 3*4) is NOT solvable.  The
   partition adversary makes that concrete: it splits the system into
   k+1 = 3 groups of n-f = 2 processes, delays every cross-group
   message, and each group - unable to distinguish the run from one
   where the others are initially dead - decides its own value.
   Three distinct decisions refute 2-set agreement.

     dune exec examples/partition_demo.exe *)

module Sim = Ksa_sim

module K = Ksa_algo.Kset_flp.Make (struct
  let l = 2
end)

module Engine = Sim.Engine.Make (K)

let narrate run groups =
  List.iteri
    (fun i group ->
      let decisions =
        List.filter_map
          (fun p ->
            Option.map
              (fun v -> Format.asprintf "%a=%a" Sim.Pid.pp p Sim.Value.pp v)
              (Sim.Run.decision_of run p))
          group
      in
      Format.printf "  group %d {%a} decided: %s@." (i + 1)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Sim.Pid.pp)
        group
        (String.concat ", " decisions))
    groups

let () =
  let n = 6 in
  let groups = Option.get (Ksa_core.Partitioning.border_case ~n ~k:2) in
  Format.printf
    "Theorem 8 border case: n=%d, f=%d, k=%d (kn = (k+1)f = %d)@." n 4 2 12;
  Format.printf "partition into %d groups; all cross-group messages delayed@."
    (List.length groups);

  let inputs = Sim.Value.distinct_inputs n in
  let pattern = Sim.Failure_pattern.none ~n in
  let run =
    Engine.run ~n ~inputs ~pattern (Sim.Adversary.partition ~groups ())
  in
  narrate run groups;
  Format.printf "distinct decisions: %d  (2-set agreement violated: %b)@."
    (Sim.Run.distinct_decisions run)
    (Sim.Run.distinct_decisions run > 2);

  (* The same protocol under a fair schedule stays within its bound:
     floor(n/L) = 3 here, but typically fewer because everyone hears
     everyone. *)
  let rng = Ksa_prim.Rng.create ~seed:7 in
  let fair = Engine.run ~n ~inputs ~pattern (Sim.Adversary.fair ~rng) in
  Format.printf "@.same protocol, fair schedule: %d distinct decision(s)@."
    (Sim.Run.distinct_decisions fair);

  (* And in its actual regime (f = 4 initial crashes, k = 3 > 4/2) the
     protocol is correct: *)
  let dead = [ 0; 2; 3; 5 ] in
  let pattern = Sim.Failure_pattern.initial_dead ~n ~dead in
  let run3 =
    Engine.run ~n ~inputs ~pattern (Sim.Adversary.fair ~rng)
  in
  Format.printf
    "with f=4 initial crashes and k=3 (solvable: 3*6 > 4*4): %a@."
    Sim.Run.pp_summary run3
