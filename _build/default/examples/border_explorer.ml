(* Prints the solvability borders of the paper as tables.

     dune exec examples/border_explorer.exe *)

module B = Ksa_core.Border

let () =
  Format.printf
    "Initial-crash solvability (Theorem 8: k-set agreement with f@.\
     initially dead processes is solvable iff kn > (k+1)f).@.\
     Rows f, columns k; 'S' solvable, '.' impossible.  n = 10:@.@.";
  let n = 10 in
  Format.printf "      ";
  for k = 1 to n - 1 do
    Format.printf "k=%-2d " k
  done;
  Format.printf "@.";
  for f = 1 to n - 1 do
    Format.printf "f=%-2d  " f;
    for k = 1 to n - 1 do
      Format.printf " %s   " (if B.theorem8_solvable ~n ~f ~k then "S" else ".")
    done;
    Format.printf "@."
  done;

  Format.printf
    "@.One live crash (Theorem 2: impossible when k(n-f) < n, even with@.\
     synchronous processes and atomic broadcast).  'X' impossible:@.@.";
  Format.printf "      ";
  for k = 1 to n - 1 do
    Format.printf "k=%-2d " k
  done;
  Format.printf "@.";
  for f = 1 to n - 1 do
    Format.printf "f=%-2d  " f;
    for k = 1 to n - 1 do
      Format.printf " %s   "
        (if B.theorem2_impossible ~n ~f ~k then "X" else " ")
    done;
    Format.printf "@."
  done;

  Format.printf
    "@.(Sigma_k, Omega_k) border (Theorem 10 + Corollary 13), n = 4..12.@.\
     'S' solvable (k=1 or k=n-1), 'X' impossible (2<=k<=n-2),@.\
     'x' the strictly weaker prior bound of Bouzid-Travers (2k^2<=n):@.@.";
  Format.printf "      ";
  for k = 1 to 11 do
    Format.printf "k=%-2d " k
  done;
  Format.printf "@.";
  for n = 4 to 12 do
    Format.printf "n=%-2d  " n;
    for k = 1 to n - 1 do
      let cell =
        if B.corollary13_solvable ~n ~k then " S  "
        else if B.bouzid_travers_impossible ~n ~k then " Xx "
        else if B.theorem10_impossible ~n ~k then " X  "
        else "    "
      in
      Format.printf "%s " cell
    done;
    Format.printf "@."
  done;
  Format.printf
    "@.Every X without x is impossibility newly established by Theorem 10.@."
