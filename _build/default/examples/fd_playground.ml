(* Failure detectors end to end: generate Sigma_k / Omega_k /
   partition histories, validate them against their definitions,
   replay Lemma 9, and finally run the Theorem 10 construction: a
   correct consensus algorithm (Synod) equipped with a perfectly valid
   (Sigma_3, Omega_3) history is driven to 3 distinct decisions.

     dune exec examples/fd_playground.exe *)

module Sim = Ksa_sim
module Fd = Ksa_fd

let show what = function
  | Ok _ -> Format.printf "  %-52s ok@." what
  | Error e -> Format.printf "  %-52s FAILED: %s@." what e

let () =
  let n = 6 in
  let pattern = Sim.Failure_pattern.initial_dead ~n ~dead:[ 5 ] in

  Format.printf "--- Sigma_k (Definition 4) ---@.";
  let sigma2 = Fd.Sigma.blocks ~k:2 ~pattern ~stab:4 ~horizon:12 () in
  show "block Sigma_2: intersection + liveness"
    (Fd.Sigma.validate ~k:2 ~pattern sigma2);
  let rng = Ksa_prim.Rng.create ~seed:1 in
  let maj = Fd.Sigma.majority ~pattern ~rng ~stab:4 ~horizon:12 () in
  show "majority Sigma_1" (Fd.Sigma.validate ~k:1 ~pattern maj);

  Format.printf "@.--- Omega_k (Definition 5) ---@.";
  let omega2 = Fd.Omega.gen ~k:2 ~pattern ~leaders:[ 0; 3 ] ~tgst:6 ~horizon:12 () in
  show "Omega_2 with tGST=6" (Fd.Omega.validate ~k:2 ~pattern omega2);
  (match Fd.Omega.check_eventual_leadership ~pattern omega2 with
  | Ok (t, ld) ->
      Format.printf "  stabilizes at t=%d on {%s}@." t
        (String.concat " " (List.map string_of_int ld))
  | Error e -> Format.printf "  %s@." e);

  Format.printf "@.--- Partition FD (Definition 7) and Lemma 9 ---@.";
  let groups = [ [ 0 ]; [ 1 ]; [ 2; 3; 4; 5 ] ] in
  let spec = { Fd.Partition_fd.groups; leaders = [ 0; 1; 2 ]; tgst = 5; stab = 4 } in
  let h = Fd.Partition_fd.gen spec ~pattern ~horizon:12 in
  show "(Sigma'_3, Omega'_3) satisfies Definition 7"
    (Fd.Partition_fd.validate_partition_property spec ~pattern h);
  show "Lemma 9: ... and is a valid (Sigma_3, Omega_3)"
    (Fd.Partition_fd.lemma9_check ~k:3 ~pattern h);

  Format.printf "@.--- Theorem 10's engine: partition + valid FD = k decisions ---@.";
  (match
     Ksa_core.Pasting.lemma12 (module Ksa_algo.Synod.A)
       ~groups:[ [ 0 ]; [ 1 ]; [ 2; 3; 4; 5 ] ]
   with
  | Error e -> Format.printf "  construction failed: %s@." e
  | Ok r ->
      Format.printf
        "  Synod (a correct (Sigma,Omega)-consensus algorithm) under a@.\
        \  valid (Sigma_3, Omega_3) history: %d distinct decisions@."
        r.Ksa_core.Pasting.distinct_decisions;
      Format.printf "  groups state-identical to their solo runs: %b@."
        (List.for_all Fun.id r.Ksa_core.Pasting.per_group_indistinguishable);
      show "pasted history satisfies Definition 7"
        (Option.get r.Ksa_core.Pasting.definition7);
      show "pasted history is a valid (Sigma_3, Omega_3)"
        (Option.get r.Ksa_core.Pasting.lemma9));

  Format.printf "@.--- Loneliness detector L ---@.";
  let lonely_pattern = Sim.Failure_pattern.initial_dead ~n:3 ~dead:[ 0; 2 ] in
  let l = Fd.Loneliness.gen ~witness:0 ~pattern:lonely_pattern ~horizon:8 () in
  show "L with a sole correct process" (Fd.Loneliness.validate ~pattern:lonely_pattern l);

  Format.printf "@.--- Gamma -> Omega_2 (Theorem 10, condition C) ---@.";
  let pattern6 = Sim.Failure_pattern.none ~n in
  let dbar = [ 0; 1; 2; 3 ] in
  let gamma =
    Fd.Transform.gamma_gen ~k:3 ~dbar ~chosen:(1, 3) ~pattern:pattern6 ~tgst:6
      ~horizon:12 ()
  in
  let o2 = Fd.Transform.omega2_of_gamma ~dbar gamma in
  show "transformed Gamma validates as Omega_2 within Dbar"
    (Fd.Transform.validate_omega_within ~k:2 ~subsystem:dbar ~pattern:pattern6 o2)
