(* Theorem 1 as an algorithm-screening tool (the paper's Remarks after
   Theorem 1, and experiment E8).

   A "promising" k-set agreement candidate: broadcast your value, wait
   for values from wait_for = 2 processes, decide the minimum.  It
   terminates despite crashes and looks agreeable under fair
   schedules.  The Theorem-1 screening harness searches for runs
   satisfying (dec-D) and (dec-Dbar) with a portfolio of partition
   adversaries, then checks executable counterparts of conditions
   (B)-(D).  All four conditions hold: by Theorem 1 the candidate does
   not solve 2-set agreement.

   The same screen run against the paper's own protocol inside its
   solvable regime finds no witness.

     dune exec examples/candidate_check.exe *)

module Core = Ksa_core

module Candidate = Ksa_algo.Naive_min.Make (struct
  let wait_for = 2
end)

module Sound = Ksa_algo.Kset_flp.Make (struct
  let l = 4 (* n = 5, f = 1: L = n - f *)
end)

let screen name algo partition =
  Format.printf "@.--- screening %s ---@." name;
  let report =
    Core.Theorem1.evaluate ~subsystem_crash_budget:1 algo ~partition
  in
  Format.printf "%a@." Core.Theorem1.pp_report report;
  (match report.Core.Theorem1.portfolio.Core.Theorem1.witness with
  | Some w ->
      Format.printf "witness (adversary: %s): %a@." w.Core.Theorem1.adversary
        Ksa_sim.Run.pp_summary w.Core.Theorem1.run
  | None -> ())

let () =
  (* candidate claims 2-set agreement on n = 5; Theorem 1 partition:
     D1 = {p0 p1}, Dbar = {p2 p3 p4} *)
  let partition = Core.Partitioning.make ~n:5 ~groups:[ [ 0; 1 ] ] in
  screen "naive-min (flawed candidate)" (module Candidate) partition;

  (* the paper's protocol, k = 2, n = 5, f = 1 (solvable: 2*5 > 3*1):
     the screen comes up empty *)
  screen "kset-flp L=4 (inside its regime)" (module Sound) partition;

  (* the paper's protocol run OUTSIDE its regime (L = 2 means f = 3,
     and 2-set agreement with n = 5, f = 3 is Theorem-2-impossible):
     the screen catches it *)
  let module Overdriven = Ksa_algo.Kset_flp.Make (struct
    let l = 2
  end) in
  let partition = Option.get (Core.Partitioning.theorem2 ~n:5 ~f:3 ~k:2) in
  screen "kset-flp L=2 (outside its regime)" (module Overdriven) partition
