(* Shared memory out of message passing: the ABD register emulation
   (the simulation invoked in the proof of Theorem 10, condition (C),
   via the paper's reference [9]).

   Every process owns one single-writer register, replicated
   everywhere as a (timestamp, value) pair.  Quorums are majorities -
   i.e. Sigma_1 outputs - so any two operations meet at some replica,
   and the read's write-back phase makes the emulation atomic.  We run
   a torture script under a lossy schedule with a crash, extract the
   full operation history, and feed it to the atomicity checker.

     dune exec examples/register_demo.exe *)

module Sim = Ksa_sim
module Sm = Ksa_sm

module Torture = Sm.Abd.Make (struct
  let script = Sm.Abd.write_then_read_all
  let write_back = true
end)

module E = Sim.Engine.Make (Torture)

let () =
  let n = 4 in
  let pattern = Sim.Failure_pattern.initial_dead ~n ~dead:[ 3 ] in
  let rng = Ksa_prim.Rng.create ~seed:2026 in
  let run, config =
    E.run_full ~max_steps:80_000 ~n
      ~inputs:(Sim.Value.distinct_inputs n)
      ~pattern
      (Sim.Adversary.fair_lossy ~rng ~p_defer:0.5)
  in
  Format.printf "emulation run: %a@." Sim.Run.pp_summary run;
  let ops = Torture.ops_of run ~state_of:(E.state_of config) in
  Format.printf "extracted %d register operations; a few of them:@."
    (List.length ops);
  List.iteri
    (fun i op ->
      if i < 6 then Format.printf "  %a@." Sm.Register.pp_op op)
    ops;
  (match Sm.Register.check_atomic ops with
  | Ok () -> Format.printf "atomicity: every register history linearizes@."
  | Error e -> Format.printf "atomicity VIOLATED: %s@." e);
  (match Sm.Register.check_write_once_timestamps ops with
  | Ok () -> Format.printf "single-writer discipline: ok@."
  | Error e -> Format.printf "SWMR violated: %s@." e);
  Format.printf
    "@.the moral for Theorem 10: majority quorums are exactly what Σ@.\
     provides — and what the partition detector (Σ'k, Ω'k) refuses to@.\
     provide across groups, which is why k-set agreement collapses there.@."
