examples/fd_playground.mli:
