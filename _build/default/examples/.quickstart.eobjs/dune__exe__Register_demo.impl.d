examples/register_demo.ml: Format Ksa_prim Ksa_sim Ksa_sm List
