examples/candidate_check.mli:
