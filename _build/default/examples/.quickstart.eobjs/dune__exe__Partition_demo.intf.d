examples/partition_demo.mli:
