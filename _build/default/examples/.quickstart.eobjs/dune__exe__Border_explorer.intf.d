examples/border_explorer.mli:
