examples/round_model.ml: Format Ksa_ho Ksa_prim Ksa_sim List Printf String
