examples/quickstart.mli:
