examples/fd_playground.ml: Format Fun Ksa_algo Ksa_core Ksa_fd Ksa_prim Ksa_sim List Option String
