examples/round_model.mli:
