examples/candidate_check.ml: Format Ksa_algo Ksa_core Ksa_sim Option
