examples/quickstart.ml: Format Ksa_algo Ksa_core Ksa_prim Ksa_sim List
