examples/border_explorer.ml: Format Ksa_core
