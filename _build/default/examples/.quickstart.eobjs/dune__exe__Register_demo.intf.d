examples/register_demo.mli:
