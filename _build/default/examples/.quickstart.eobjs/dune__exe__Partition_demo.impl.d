examples/partition_demo.ml: Format Ksa_algo Ksa_core Ksa_prim Ksa_sim List Option String
