.PHONY: all build test bench experiments examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- bench

experiments:
	dune exec bench/main.exe -- tables

examples:
	dune exec examples/quickstart.exe
	dune exec examples/partition_demo.exe
	dune exec examples/candidate_check.exe
	dune exec examples/border_explorer.exe
	dune exec examples/fd_playground.exe
	dune exec examples/round_model.exe
	dune exec examples/register_demo.exe

clean:
	dune clean
